// Package core orchestrates the full OGDP study: it generates (or
// accepts) a corpus per portal and runs every analysis of the paper —
// acquisition funnel, size/null/metadata profiling, uniqueness and
// candidate keys, FD discovery and BCNF decomposition, joinability
// with expansion ratios, stratified usefulness labeling, and
// unionability — producing one result struct per table/figure of the
// evaluation.
//
// # Concurrency and determinism
//
// The study parallelizes on four levels, all bounded by
// Options.Workers: portals run concurrently, the §3–§6 sections of one
// portal overlap, FD/key discovery fans out per table, and the join
// search shards candidate verification. The result is byte-identical
// for every worker count: each parallel unit draws from its own rng
// stream derived from (Options.Seed, section salt, unit index) — never
// from a shared *rand.Rand — and merged outputs are folded back in
// sequential order (or sorted into a canonical order) before being
// returned.
package core

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"sort"
	"time"

	"ogdp/internal/ckan"
	"ogdp/internal/classify"
	"ogdp/internal/corpus"
	"ogdp/internal/fd"
	"ogdp/internal/gen"
	"ogdp/internal/ind"
	"ogdp/internal/join"
	"ogdp/internal/keys"
	"ogdp/internal/normalize"
	"ogdp/internal/obs"
	"ogdp/internal/parallel"
	"ogdp/internal/profile"
	"ogdp/internal/stats"
	"ogdp/internal/table"
	"ogdp/internal/union"
)

// Options configures a study run.
type Options struct {
	// Scale multiplies the calibrated corpus sizes (1.0 = full
	// calibrated size). Defaults to 1.0.
	Scale float64
	// Seed drives all randomness. Defaults to 1.
	Seed int64
	// FetchFunnel, when true, serializes the corpus into a CKAN portal,
	// serves it over HTTP, and measures the downloadable/readable
	// funnel with the real client (Table 1). Costs time and memory.
	FetchFunnel bool
	// Compress, when true, measures gzip-compressed portal sizes
	// (Table 1).
	Compress bool
	// MaxFDTables caps how many tables enter the FD/BCNF analysis
	// (0 = the full eligible subset, the paper's setting).
	MaxFDTables int
	// SamplePerCell is the per-(bucket × key combo) quota of the
	// labeling sample; 0 uses the paper's ~17.
	SamplePerCell int
	// UnionSamples is the number of union pairs labeled per portal;
	// 0 uses the paper's 25.
	UnionSamples int
	// Sensitivity, when true, repeats the joinability analysis at the
	// paper's supplementary Jaccard threshold of 0.7 to verify the
	// expansion-ratio picture is not an artifact of the 0.9 cut.
	Sensitivity bool
	// Extensions, when true, additionally runs the beyond-the-paper
	// analyses: inclusion-dependency (foreign key) discovery, fuzzy
	// unionability gain, and FD plausibility scoring.
	Extensions bool
	// Workers bounds the goroutines of every parallel layer of the
	// study (portal fan-out, section overlap, per-table FD/key
	// discovery, join-candidate verification). 0 selects
	// runtime.GOMAXPROCS(0); 1 reproduces the sequential run exactly.
	// Results are byte-identical for every value — see the determinism
	// contract in the package comment.
	Workers int

	// Metrics, when non-nil, receives the study's counters and
	// histograms, labeled per portal. Everything recorded here is a
	// pure function of (profiles, Scale, Seed), so snapshots are
	// byte-identical for every Workers value.
	Metrics *obs.Registry
	// Trace, when non-nil, gains one child span per portal with the
	// section tree beneath it. Spans carry task/item/byte counts; wall
	// time appears only when the trace was built with a clock.
	Trace *obs.Span
	// Clock, when non-nil, is forwarded to the fetch client so the
	// funnel measurement records per-request wall time. Study code
	// itself never reads a clock; the CLIs inject time.Now only under
	// -trace.
	Clock func() time.Time
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.UnionSamples == 0 {
		o.UnionSamples = 25
	}
	return o
}

// FDStats is Table 5 for one portal.
type FDStats struct {
	Tables          int
	Columns         int
	AvgCols         float64
	WithFD          int
	WithFDPct       float64
	WithSimpleFD    int
	WithSimpleFDPct float64
	// AvgDecomposed is the mean number of sub-tables produced by BCNF
	// decomposition of tables that were not in BCNF.
	AvgDecomposed float64
	// AvgPartitionCols is the mean column count of the decomposition's
	// sub-tables.
	AvgPartitionCols float64
	// AvgUniquenessGain is the mean ratio of uniqueness scores for
	// unrepeated columns after vs before decomposition.
	AvgUniquenessGain float64
	// DecompositionDist[k] counts tables decomposed into k sub-tables
	// (k = 1 means the table was already in BCNF). (Figure 7)
	DecompositionDist map[int]int
}

// JoinStats is Table 6 for one portal.
type JoinStats struct {
	Pairs             int
	Tables            int
	JoinableTables    int
	JoinableTablesPct float64
	MedianTableDegree float64
	MaxTableDegree    int
	Columns           int
	JoinableCols      int
	JoinableColsPct   float64
	KeyJoinable       int
	KeyJoinablePct    float64
	NonkeyJoinable    int
	NonkeyJoinablePct float64
	MedianColDegree   float64
	MaxColDegree      int
	// Expansions holds every pair's expansion ratio (Figure 8).
	Expansions []float64
	// ExpansionLV is the letter-value summary of Figure 8.
	ExpansionLV stats.LetterValues
}

// UnionStats is Table 11 for one portal.
type UnionStats struct {
	Tables              int
	UnionableTables     int
	UnionableTablesPct  float64
	MedianDegree        float64
	MaxDegree           int
	UniqueSchemas       int
	AvgTablesPerSchema  float64
	UnionableSchemas    int
	UnionableSchemasPct float64
	SingleDatasetGroups int
	SingleDatasetPct    float64
}

// ExtensionStats holds the beyond-the-paper analyses of one portal.
type ExtensionStats struct {
	// INDs is the number of exact unary inclusion dependencies.
	INDs int
	// ForeignKeyCandidates is the number of key-referencing INDs whose
	// dependent is a non-key column.
	ForeignKeyCandidates int
	// PlantedFKRecovered is the fraction of fk candidates matching a
	// generator-planted entity relationship.
	PlantedFKRecovered float64
	// FuzzyUnionTables counts tables connected by approximate schema
	// matching; ExactUnionTables the paper's exact-identity count.
	FuzzyUnionTables int
	ExactUnionTables int
	// MeanFDPlausibility averages the plausibility score over a sample
	// of discovered FDs.
	MeanFDPlausibility float64
}

// LabelResults aggregates the §5.3 usefulness study for one portal.
type LabelResults struct {
	Samples  int
	Overall  classify.LabelDist    // Table 7
	Locality [2]classify.LabelDist // Table 8: inter, intra
	Combos   [3]classify.LabelDist // Table 9
	Types    []classify.LabelDist  // Table 10
	Buckets  [3]classify.LabelDist // supplementary size analysis
	// Predictor and Baseline evaluate the paper-recommended filters
	// against overlap-only suggestions on the same sample.
	Predictor classify.Evaluation
	Baseline  classify.Evaluation
}

// PortalResult bundles every experiment for one portal.
type PortalResult struct {
	Portal string
	// Corpus is the analyzed corpus. Generated studies store the
	// *gen.Corpus here; RunPortal preserves whatever Source it was
	// given (e.g. a disk-loaded corpus).
	Corpus corpus.Source

	Sizes           profile.PortalSizes      // Table 1
	SizePercentiles []profile.SizePercentile // Figure 1
	Growth          []profile.GrowthPoint    // Figure 2
	TableSizes      profile.TableSizeStats   // Table 2
	ColsHist        []stats.Bucket           // Figure 3 (columns)
	RowsHist        []stats.Bucket           // Figure 3 (rows)
	Nulls           profile.NullStats        // Figure 4
	Metadata        profile.MetadataStats    // Table 3
	Uniqueness      map[string]profile.UniquenessStats

	KeySizeDist []int // Figure 6: index 0 = no key ≤ 3, else min key size

	FD FDStats // Table 5 + Figure 7

	Join JoinStats // Table 6 + Figure 8
	// JoinAt07 repeats Table 6/Figure 8 at Jaccard ≥ 0.7 (the paper's
	// supplementary sensitivity check); nil unless Options.Sensitivity.
	JoinAt07 *JoinStats
	Labels   LabelResults // Tables 7–10

	Union       UnionStats         // Table 11
	UnionLabels classify.LabelDist // §6 labeling

	// Ext holds the beyond-the-paper analyses; nil unless
	// Options.Extensions.
	Ext *ExtensionStats
}

// StudyResult is the full four-portal study.
type StudyResult struct {
	Options Options
	Portals []PortalResult
}

// Section seed salts. Each §-section of the study draws from its own
// rng stream derived from (Options.Seed, salt), so sections can
// reorder or run concurrently without perturbing one another's draws
// (previously one *rand.Rand was threaded through FD decomposition,
// join-pair sampling, and union sampling in sequence, so any change in
// an earlier section's consumption shifted every later draw).
const (
	seedSaltFD = 1 + iota
	seedSaltJoinSample
	seedSaltUnionSample
)

// sectionSeed derives a section's rng seed from the study seed; add a
// unit index for per-table streams inside a section. The multipliers
// are primes so distinct (seed, salt) pairs map to distinct streams.
func sectionSeed(seed int64, salt int64) int64 {
	return seed*7919 + salt*1000003
}

// Run executes the study for the given portal profiles (use
// gen.Profiles() for the paper's four). Portals are generated and
// analyzed concurrently when opts.Workers allows — and, because each
// portal's sections fan out through the same bounded pool layers, the
// sections of different portals overlap too. Each portal writes only
// its own result slot, so the output order always matches the profile
// list.
func Run(profiles []gen.PortalProfile, opts Options) *StudyResult {
	opts = opts.withDefaults()
	res := &StudyResult{Options: opts, Portals: make([]PortalResult, len(profiles))}
	// Portal spans are created sequentially before the fan-out, so the
	// trace tree's child order matches the profile list for every
	// worker count.
	spans := make([]*obs.Span, len(profiles))
	for i, p := range profiles {
		spans[i] = opts.Trace.Child("portal:" + p.Name)
	}
	// Study fan-outs run under context.Background() and are never
	// canceled, so ForEach's only error source (its context) cannot
	// fire; parallel.Must turns that impossibility into a loud panic
	// instead of a silently dropped error. Worker panics propagate
	// separately as *parallel.WorkerPanic.
	parallel.Must(parallel.ForEach(parallel.WithPool(context.Background(), "portals"), len(profiles), opts.Workers, func(i int) {
		c := gen.Generate(profiles[i], opts.Scale, opts.Seed+int64(i))
		res.Portals[i] = runPortal(c, opts, spans[i])
	}))
	return res
}

// colUnit is one independent precompute work unit: one column of one
// table, optionally including its canonical code stream.
type colUnit struct {
	t     *table.Table
	c     int
	canon bool
}

// precomputeUnits flattens the corpus into per-(table, column) work
// units for the precompute fan-out. Columns of tables in the §4 FD
// subset additionally materialize their canonical code streams (the
// representation the FD/key lattice searches and row hashing consume);
// canon streams of other tables are never read, so building them
// would only cost time and memory.
//
// Units are ordered largest-table-first so a skewed corpus cannot
// stretch the fan-out's makespan by scheduling its giant tables last;
// the stable sort keeps (table, column) order among equal sizes, so
// the unit list is deterministic. Scheduling order never affects
// results — each unit writes only its own column's caches.
func precomputeUnits(tables []*table.Table, fdTables []*table.Table) []colUnit {
	canonFor := make(map[*table.Table]bool, len(fdTables))
	for _, t := range fdTables {
		canonFor[t] = true
	}
	total := 0
	for _, t := range tables {
		total += t.NumCols()
	}
	units := make([]colUnit, 0, total)
	for _, t := range tables {
		canon := canonFor[t]
		for c := 0; c < t.NumCols(); c++ {
			units = append(units, colUnit{t: t, c: c, canon: canon})
		}
	}
	sort.SliceStable(units, func(i, j int) bool {
		return units[i].t.NumRows() > units[j].t.NumRows()
	})
	return units
}

// RunPortal executes every analysis over one corpus. The four sections
// are mutually independent given their own rng streams (see the
// section salts above), so they overlap when opts.Workers allows.
//
// Any corpus.Source works: generated corpora additionally provide the
// §5.3 labeling oracle and the funnel's servable portal, which core
// discovers by type assertion; a corpus without them still runs every
// structural analysis (labels default to zero, the funnel is skipped).
func RunPortal(src corpus.Source, opts Options) PortalResult {
	opts = opts.withDefaults()
	return runPortal(src, opts, opts.Trace.Child("portal:"+src.PortalID()))
}

// servablePortal is the optional capability behind the Table 1 funnel:
// a corpus that can serialize itself into a CKAN portal (with its
// profile's broken-resource rates) gets measured over live HTTP.
type servablePortal interface {
	ServablePortal(seed int64) *ckan.Portal
}

func runPortal(src corpus.Source, opts Options, span *obs.Span) PortalResult {
	pr := PortalResult{Portal: src.PortalID(), Corpus: src}
	bg := context.Background()

	metas := src.TableMetas()
	datasets := src.DatasetMetas()
	tables := make([]*table.Table, len(metas))
	for i, m := range metas {
		tables[i] = m.Table
	}
	span.AddTasks(len(tables))
	recordCorpusMetrics(pr.Portal, metas, datasets, opts.Metrics)

	// Precompute every per-column cache up front as one flat list of
	// independent (table, column) work units: this is the bulk of §3's
	// CPU, and it leaves the sections below reading immutable,
	// lock-free caches instead of racing to fill them. Flat granularity
	// matters — the old per-table fan-out (with a sequential inner
	// column loop) serialized behind the corpus's few giant tables.
	fdTables := fdSubset(metas, opts.MaxFDTables)
	cacheSpan := span.Child("precompute")
	units := precomputeUnits(tables, fdTables)
	cacheSpan.AddTasks(len(units))
	parallel.Must(parallel.ForEach(parallel.WithPool(bg, "precompute"), len(units), opts.Workers, func(i int) {
		u := units[i]
		u.t.Profile(u.c)
		if u.canon {
			u.t.CanonCodes(u.c)
		}
	}))
	cacheSpan.End()
	// The labeling oracle is a capability of generated corpora; other
	// sources run unlabeled (classify treats a nil oracle as "no
	// annotation available").
	var joinOracle classify.JoinOracle
	var unionOracle classify.UnionOracle
	if gc, ok := src.(*gen.Corpus); ok {
		o := gen.Truth(gc)
		joinOracle, unionOracle = o, o
	}

	// Section spans are created sequentially here — before the section
	// fan-out — so the rendered tree is identical for every worker
	// count even though the sections themselves overlap.
	secProfile := span.Child("profile")
	secKeys := span.Child("keys+fd")
	secJoin := span.Child("join")
	secUnion := span.Child("union")
	portalLabels := []string{"portal", pr.Portal}
	counter := func(name, help string, n int) {
		opts.Metrics.Counter(name, help, portalLabels...).Add(int64(n))
	}

	sections := []func(){
		func() { // ---- profiling (§3) ----
			pc := profileCorpus(pr.Portal, metas)
			if opts.FetchFunnel {
				pc.Funnel = measureFunnel(src, pr.Portal, opts, secProfile.Child("funnel"))
			}
			pr.Sizes = profile.Sizes(pc, opts.Compress)
			pr.SizePercentiles = profile.SizePercentiles(pc, []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
			pr.Growth = profile.Growth(pc)
			pr.TableSizes = profile.TableSizes(pc)
			pr.ColsHist, pr.RowsHist = sizeHistograms(metas)
			pr.Nulls = profile.Nulls(pc)
			pr.Metadata = profile.Metadata(pc, 100)
			pr.Uniqueness = profile.Uniqueness(pc)
			secProfile.AddItems(len(pc.Tables))
			secProfile.End()
		},
		func() { // ---- keys and FDs (§4) ----
			n := len(fdTables)
			secKeys.AddTasks(2 * n)
			// One flat fan-out covers both §4.1 (minimal candidate
			// keys) and §4.2 (FD discovery + BCNF decomposition):
			// units [0, n) are the per-table FD searches — the heavier
			// pass, scheduled first — and units [n, 2n) the per-table
			// key searches. Fusing the passes removes the barrier that
			// previously idled workers between them; both write only
			// index-addressed slots, so the fold is order-independent.
			fdPer := make([]tableFD, n)
			keySizes := make([]int, n)
			parallel.Must(parallel.ForEach(parallel.WithPool(bg, "keys+fd"), 2*n, opts.Workers, func(i int) {
				if i < n {
					fdPer[i] = fdTableOne(fdTables[i], opts.Seed, i)
				} else {
					keySizes[i-n] = keys.MinCandidateKeySize(fdTables[i-n], keys.MaxCandidateKeySize)
				}
			}))
			pr.KeySizeDist = keys.FoldSizeDistribution(keySizes, keys.MaxCandidateKeySize)
			var cost fdCost
			pr.FD, cost = foldFD(fdPer)
			counter("ogdp_fd_tables_total", "Tables entering the FD/BCNF analysis.", len(fdTables))
			counter("ogdp_fd_discovered_total", "Minimal non-trivial FDs discovered.", cost.fds)
			counter("ogdp_fd_cardinalities_total", "Projection count-distinct evaluations performed by the FUN search.", cost.cardinalities)
			secKeys.AddItems(cost.fds)
			secKeys.End()
		},
		func() { // ---- joinability (§5) ----
			secJoin.AddTasks(len(tables))
			ja := join.Find(tables, join.Options{Workers: opts.Workers})
			pr.Join = joinStats(tables, ja)
			counter("ogdp_join_eligible_columns_total", "Columns passing the distinct-count filter of the join search.", ja.Eligible)
			counter("ogdp_join_candidates_total", "Column pairs surfaced by the prefix-filter index for exact verification.", ja.Candidates)
			counter("ogdp_join_pairs_total", "Joinable column pairs at the paper's Jaccard >= 0.9 threshold.", len(ja.Pairs))

			if opts.Sensitivity {
				ja07 := join.Find(tables, join.Options{MinJaccard: 0.7, Workers: opts.Workers})
				st := joinStats(tables, ja07)
				pr.JoinAt07 = &st
			}

			rng := rand.New(rand.NewSource(sectionSeed(opts.Seed, seedSaltJoinSample)))
			samples := classify.SampleJoinPairs(tables, ja.Pairs, joinOracle,
				classify.SampleOptions{PerCell: opts.SamplePerCell}, rng)
			pr.Labels = labelResults(tables, samples)
			secJoin.AddItems(len(ja.Pairs))
			secJoin.End()
		},
		func() { // ---- unionability (§6) ----
			ua := union.Find(tables)
			pr.Union = unionStats(len(metas), ua)
			counter("ogdp_union_groups_total", "Unionable schema groups found.", len(ua.Groups))
			rng := rand.New(rand.NewSource(sectionSeed(opts.Seed, seedSaltUnionSample)))
			unionSamples := classify.SampleUnionPairs(ua, unionOracle, opts.UnionSamples, rng)
			pr.UnionLabels = classify.UnionLabelDist(unionSamples)
			secUnion.AddItems(len(ua.Groups))
			secUnion.End()
		},
	}
	// Never canceled (see Run); Must converts the impossible context
	// error into a panic instead of dropping it.
	parallel.Must(parallel.ForEach(parallel.WithPool(bg, "sections"), len(sections), opts.Workers, func(i int) { sections[i]() }))

	if opts.Extensions {
		ext := extensionStats(src, tables, fdTables)
		ext.ExactUnionTables = pr.Union.UnionableTables
		pr.Ext = &ext
	}

	span.End()
	return pr
}

// recordCorpusMetrics publishes the corpus shape — table/dataset
// counts and the row/column/byte distributions — for one portal. All
// values derive from the corpus itself, so they are identical for
// every worker count.
func recordCorpusMetrics(portal string, metas []corpus.TableMeta, datasets []corpus.Dataset, r *obs.Registry) {
	if r == nil {
		return
	}
	ls := []string{"portal", portal}
	r.Counter("ogdp_tables_total", "Tables in the analyzed corpus.", ls...).Add(int64(len(metas)))
	r.Gauge("ogdp_corpus_datasets", "Datasets in the analyzed corpus.", ls...).Set(float64(len(datasets)))
	rows := r.Histogram("ogdp_table_rows", "Row count per corpus table.", obs.CountBuckets, ls...)
	cols := r.Histogram("ogdp_table_cols", "Column count per corpus table.", obs.CountBuckets, ls...)
	bytes := r.Histogram("ogdp_table_bytes", "Serialized CSV size per corpus table, in bytes.", obs.SizeBuckets, ls...)
	cells := r.Counter("ogdp_cells_total", "Cells (rows x columns) across the corpus.", ls...)
	padded := r.Counter("ogdp_cells_padded_total", "Cells synthesized by padding short CSV rows to the table width.", ls...)
	truncated := r.Counter("ogdp_cells_truncated_total", "Cells dropped by truncating long CSV rows to the table width.", ls...)
	for _, m := range metas {
		rows.Observe(float64(m.Table.NumRows()))
		cols.Observe(float64(m.Table.NumCols()))
		bytes.Observe(float64(m.RawSize))
		cells.Add(int64(m.Table.NumRows()) * int64(m.Table.NumCols()))
		padded.Add(int64(m.Table.Ragged.Padded))
		truncated.Add(int64(m.Table.Ragged.Truncated))
	}
}

// extensionStats runs the beyond-the-paper analyses. The planted-FK
// recovery rate needs generation provenance, so it is computed only
// when the source is a *gen.Corpus; everything else is structural.
func extensionStats(src corpus.Source, tables []*table.Table, fdTables []*table.Table) ExtensionStats {
	var ext ExtensionStats

	inds := ind.Find(tables, ind.Options{})
	ext.INDs = len(inds)
	fks := ind.ForeignKeyCandidates(tables, inds)
	ext.ForeignKeyCandidates = len(fks)
	if gc, ok := src.(*gen.Corpus); ok && len(fks) > 0 {
		planted := 0
		for _, d := range fks {
			m1 := gc.Metas[d.DepTable]
			m2 := gc.Metas[d.RefTable]
			if m1.Cols[d.DepCol].Role == gen.RoleForeignKey && m2.Cols[d.RefCol].Role == gen.RoleEntityKey &&
				m1.Cols[d.DepCol].Pool == m2.Cols[d.RefCol].Pool {
				planted++
			}
		}
		ext.PlantedFKRecovered = float64(planted) / float64(len(fks))
	}

	inFuzzy := map[int]struct{}{}
	for _, p := range union.FindFuzzy(tables, union.FuzzyOptions{}) {
		inFuzzy[p.T1] = struct{}{}
		inFuzzy[p.T2] = struct{}{}
	}
	ext.FuzzyUnionTables = len(inFuzzy)

	// FD plausibility over a bounded sample of the FD subset.
	var sum float64
	n := 0
	for _, t := range fdTables {
		if n >= 200 {
			break
		}
		for _, f := range fd.Discover(t, fd.MaxLHS) {
			sum += fd.Plausibility(t, f)
			n++
			if n >= 200 {
				break
			}
		}
	}
	if n > 0 {
		ext.MeanFDPlausibility = sum / float64(n)
	}
	return ext
}

func profileCorpus(portal string, metas []corpus.TableMeta) *profile.Corpus {
	pc := &profile.Corpus{Portal: portal}
	pc.Tables = make([]profile.TableInfo, 0, len(metas))
	for _, m := range metas {
		pc.Tables = append(pc.Tables, profile.TableInfo{
			Table:     m.Table,
			DatasetID: m.DatasetID,
			Published: m.Published,
			RawSize:   m.RawSize,
			Metadata:  m.Metadata,
		})
	}
	return pc
}

// measureFunnel serves the corpus through a CKAN API server and runs
// the acquisition pipeline against it. The fetch client shares the
// study's worker bound and is deterministic for every value of it;
// its metrics land in the study registry under the portal label, and
// its stage spans under the given span. Sources without the
// servablePortal capability skip the measurement.
func measureFunnel(src corpus.Source, portalName string, opts Options, span *obs.Span) profile.FunnelCounts {
	sp, ok := src.(servablePortal)
	if !ok {
		span.End()
		return profile.FunnelCounts{}
	}
	portal := sp.ServablePortal(opts.Seed)
	srv := httptest.NewServer(ckan.NewServer(portal))
	defer srv.Close()
	client := ckan.NewClient(srv.URL)
	client.Workers = opts.Workers
	client.Seed = opts.Seed
	client.Metrics = opts.Metrics
	client.MetricLabels = []string{"portal", portalName}
	client.Trace = span
	client.Now = opts.Clock
	_, st, err := client.FetchAll()
	span.End()
	if err != nil {
		return profile.FunnelCounts{}
	}
	return profile.FunnelCounts{
		Datasets:     st.Datasets,
		Tables:       st.Tables,
		Downloadable: st.Downloadable,
		Readable:     st.Readable,
	}
}

func sizeHistograms(metas []corpus.TableMeta) (cols, rows []stats.Bucket) {
	var colCounts, rowCounts []float64
	for _, m := range metas {
		colCounts = append(colCounts, float64(m.Table.NumCols()))
		rowCounts = append(rowCounts, float64(m.Table.NumRows()))
	}
	cols = stats.Histogram(colCounts, []float64{0, 5, 10, 20, 50, 100})
	rows = stats.Histogram(rowCounts, []float64{0, 10, 100, 1000, 10000, 100000, 1e9})
	return cols, rows
}

// fdSubset selects the paper's FD-analysis subset: 10 ≤ rows ≤ 10000
// and 5 ≤ cols ≤ 20.
func fdSubset(metas []corpus.TableMeta, max int) []*table.Table {
	var out []*table.Table
	for _, m := range metas {
		t := m.Table
		if t.NumRows() < 10 || t.NumRows() > 10000 {
			continue
		}
		if t.NumCols() < 5 || t.NumCols() > 20 {
			continue
		}
		out = append(out, t)
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out
}

// fdCost aggregates the deterministic work counters of one portal's
// FD analysis, for the observability layer.
type fdCost struct {
	cardinalities int
	fds           int
}

// tableFD is one table's FD/BCNF result, the work unit of the fused
// §4 fan-out in runPortal. Results are index-addressed and folded in
// index order by foldFD, so the aggregate (including its
// floating-point sums) is identical for every worker count.
type tableFD struct {
	cols      int
	withFD    bool
	simpleFD  bool
	subTables int
	inBCNF    bool
	partCols  []float64
	gain      float64
	cost      fd.Cost
}

// fdTableOne runs FD discovery and BCNF decomposition on one table.
// The table's decomposition choices are drawn from an rng stream
// derived from (seed, seedSaltFD, table index i), never from shared
// state, so distinct indices may run concurrently.
func fdTableOne(t *table.Table, seed int64, i int) tableFD {
	r := tableFD{cols: t.NumCols()}
	fds, cost := fd.DiscoverCost(t, fd.MaxLHS)
	r.cost = cost
	if len(fds) == 0 {
		r.subTables = 1
		r.inBCNF = true
		return r
	}
	r.withFD = true
	r.simpleFD = len(fd.SimpleFDs(fds)) > 0
	rng := rand.New(rand.NewSource(sectionSeed(seed, seedSaltFD) + int64(i)))
	res := normalize.Decompose(t, fd.MaxLHS, rng)
	r.subTables = len(res.Tables)
	r.inBCNF = res.InBCNF()
	if !r.inBCNF {
		for _, sub := range res.Tables {
			r.partCols = append(r.partCols, float64(sub.NumCols()))
		}
		r.gain = res.UniquenessGain()
	}
	return r
}

// foldFD aggregates per-table FD results in index order.
func foldFD(per []tableFD) (FDStats, fdCost) {
	st := FDStats{DecompositionDist: map[int]int{}}
	var cost fdCost
	var cols float64
	var decomposed, partCols, gains []float64
	for _, r := range per {
		st.Tables++
		st.Columns += r.cols
		cols += float64(r.cols)
		cost.cardinalities += r.cost.Cardinalities
		cost.fds += r.cost.FDs
		if !r.withFD {
			st.DecompositionDist[1]++
			continue
		}
		st.WithFD++
		if r.simpleFD {
			st.WithSimpleFD++
		}
		st.DecompositionDist[r.subTables]++
		if !r.inBCNF {
			decomposed = append(decomposed, float64(r.subTables))
			partCols = append(partCols, r.partCols...)
			gains = append(gains, r.gain)
		}
	}
	if st.Tables > 0 {
		st.AvgCols = cols / float64(st.Tables)
		st.WithFDPct = float64(st.WithFD) / float64(st.Tables)
		st.WithSimpleFDPct = float64(st.WithSimpleFD) / float64(st.Tables)
	}
	st.AvgDecomposed = stats.Mean(decomposed)
	st.AvgPartitionCols = stats.Mean(partCols)
	st.AvgUniquenessGain = stats.Mean(gains)
	return st, cost
}

func joinStats(tables []*table.Table, ja *join.Analysis) JoinStats {
	st := JoinStats{Tables: len(tables), Pairs: len(ja.Pairs)}
	for _, t := range tables {
		st.Columns += t.NumCols()
	}
	tableNbrs := map[int]map[int]struct{}{}
	type colKey struct{ t, c int }
	colNbrs := map[colKey]map[colKey]struct{}{}
	colKeyness := map[colKey]bool{}
	for _, p := range ja.Pairs {
		addNbr(tableNbrs, p.T1, p.T2)
		addNbr(tableNbrs, p.T2, p.T1)
		a, b := colKey{p.T1, p.C1}, colKey{p.T2, p.C2}
		if colNbrs[a] == nil {
			colNbrs[a] = map[colKey]struct{}{}
		}
		colNbrs[a][b] = struct{}{}
		if colNbrs[b] == nil {
			colNbrs[b] = map[colKey]struct{}{}
		}
		colNbrs[b][a] = struct{}{}
		colKeyness[a] = p.Key1
		colKeyness[b] = p.Key2
		st.Expansions = append(st.Expansions, p.Expansion)
	}
	st.JoinableTables = len(tableNbrs)
	if st.Tables > 0 {
		st.JoinableTablesPct = float64(st.JoinableTables) / float64(st.Tables)
	}
	var tdeg []float64
	for _, n := range tableNbrs {
		tdeg = append(tdeg, float64(len(n)))
		if len(n) > st.MaxTableDegree {
			st.MaxTableDegree = len(n)
		}
	}
	sort.Float64s(tdeg) // canonical order: map iteration emitted these
	st.MedianTableDegree = stats.Median(tdeg)
	st.JoinableCols = len(colNbrs)
	if st.Columns > 0 {
		st.JoinableColsPct = float64(st.JoinableCols) / float64(st.Columns)
	}
	var cdeg []float64
	for k, n := range colNbrs {
		cdeg = append(cdeg, float64(len(n)))
		if len(n) > st.MaxColDegree {
			st.MaxColDegree = len(n)
		}
		if colKeyness[k] {
			st.KeyJoinable++
		} else {
			st.NonkeyJoinable++
		}
	}
	sort.Float64s(cdeg) // canonical order: map iteration emitted these
	st.MedianColDegree = stats.Median(cdeg)
	if st.JoinableCols > 0 {
		st.KeyJoinablePct = float64(st.KeyJoinable) / float64(st.JoinableCols)
		st.NonkeyJoinablePct = float64(st.NonkeyJoinable) / float64(st.JoinableCols)
	}
	st.ExpansionLV = stats.LetterValueSummary(st.Expansions, 5)
	return st
}

func addNbr(m map[int]map[int]struct{}, a, b int) {
	if m[a] == nil {
		m[a] = map[int]struct{}{}
	}
	m[a][b] = struct{}{}
}

func labelResults(tables []*table.Table, samples []classify.SampledPair) LabelResults {
	lr := LabelResults{
		Samples:  len(samples),
		Overall:  classify.Overall(samples),
		Locality: classify.ByDatasetLocality(samples),
		Combos:   classify.ByKeyCombo(samples),
		Types:    classify.ByTypeGroup(samples),
		Buckets:  classify.BySizeBucket(samples),
	}
	lr.Predictor = classify.Predictor{}.Evaluate(tables, samples)
	lr.Baseline = classify.BaselineOverlapOnly{}.Evaluate(tables, samples)
	return lr
}

func unionStats(nTables int, ua *union.Analysis) UnionStats {
	st := UnionStats{
		Tables:              nTables,
		UnionableTables:     ua.UnionableTables(),
		UniqueSchemas:       ua.UniqueSchemas,
		UnionableSchemas:    len(ua.Groups),
		SingleDatasetGroups: ua.SingleDatasetGroups(),
	}
	if st.Tables > 0 {
		st.UnionableTablesPct = float64(st.UnionableTables) / float64(st.Tables)
	}
	if st.UniqueSchemas > 0 {
		st.AvgTablesPerSchema = float64(st.Tables) / float64(st.UniqueSchemas)
		st.UnionableSchemasPct = float64(st.UnionableSchemas) / float64(st.UniqueSchemas)
	}
	if st.UnionableSchemas > 0 {
		st.SingleDatasetPct = float64(st.SingleDatasetGroups) / float64(st.UnionableSchemas)
	}
	degs := ua.Degrees()
	st.MedianDegree = stats.MedianInts(degs)
	for _, d := range degs {
		if d > st.MaxDegree {
			st.MaxDegree = d
		}
	}
	return st
}
