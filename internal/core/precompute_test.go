package core

import (
	"fmt"
	"testing"

	"ogdp/internal/table"
)

func unitTable(name string, cols, rows int) *table.Table {
	header := make([]string, cols)
	for c := range header {
		header[c] = fmt.Sprintf("c%d", c)
	}
	data := make([][]string, rows)
	for r := range data {
		row := make([]string, cols)
		for c := range row {
			row[c] = fmt.Sprintf("%d", r*cols+c)
		}
		data[r] = row
	}
	return table.FromRows(name+".csv", header, data)
}

// TestPrecomputeUnits pins the shape of the precompute fan-out's work
// list: one unit per (table, column), canonical code streams exactly
// for the FD-subset tables, and a deterministic largest-table-first
// order.
func TestPrecomputeUnits(t *testing.T) {
	small := unitTable("small", 3, 10)
	mid := unitTable("mid", 2, 50)
	big := unitTable("big", 4, 200)
	tables := []*table.Table{small, mid, big}
	fdTables := []*table.Table{mid}

	units := precomputeUnits(tables, fdTables)

	if len(units) != 3+2+4 {
		t.Fatalf("unit count = %d, want 9", len(units))
	}

	seen := map[string]int{}
	for _, u := range units {
		seen[fmt.Sprintf("%s:%d", u.t.Name, u.c)]++
		if u.canon != (u.t == mid) {
			t.Errorf("table %s col %d: canon = %v, want %v", u.t.Name, u.c, u.canon, u.t == mid)
		}
	}
	for _, tb := range tables {
		for c := 0; c < tb.NumCols(); c++ {
			key := fmt.Sprintf("%s:%d", tb.Name, c)
			if seen[key] != 1 {
				t.Errorf("unit %s appears %d times, want exactly once", key, seen[key])
			}
		}
	}

	// Largest table first; columns stay in order within a table.
	wantOrder := []string{
		"big.csv:0", "big.csv:1", "big.csv:2", "big.csv:3",
		"mid.csv:0", "mid.csv:1",
		"small.csv:0", "small.csv:1", "small.csv:2",
	}
	for i, u := range units {
		if got := fmt.Sprintf("%s:%d", u.t.Name, u.c); got != wantOrder[i] {
			t.Fatalf("unit %d = %s, want %s (largest-first, stable)", i, got, wantOrder[i])
		}
	}
}

// TestPrecomputeUnitsEmpty: no tables, no units — and an empty list
// must not panic the fan-out path.
func TestPrecomputeUnitsEmpty(t *testing.T) {
	if units := precomputeUnits(nil, nil); len(units) != 0 {
		t.Fatalf("units = %d, want 0", len(units))
	}
}
