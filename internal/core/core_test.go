package core

import (
	"testing"

	"ogdp/internal/gen"
)

// studyOpts keeps tests fast: small corpora, capped FD analysis. The
// labeling quota stays at the paper's 17 because smaller samples make
// the label-shape assertions seed-sensitive.
var studyOpts = Options{
	Scale:         0.2,
	Seed:          11,
	FetchFunnel:   true,
	Compress:      true,
	MaxFDTables:   80,
	SamplePerCell: 17,
	UnionSamples:  20,
}

// runOnce caches one full study across tests.
var cached *StudyResult

func study(t *testing.T) *StudyResult {
	t.Helper()
	if cached == nil {
		cached = Run(gen.Profiles(), studyOpts)
	}
	return cached
}

func portal(t *testing.T, name string) PortalResult {
	for _, p := range study(t).Portals {
		if p.Portal == name {
			return p
		}
	}
	t.Fatalf("portal %s missing", name)
	return PortalResult{}
}

func TestRunProducesAllPortals(t *testing.T) {
	res := study(t)
	if len(res.Portals) != 4 {
		t.Fatalf("portals = %d", len(res.Portals))
	}
	names := []string{"SG", "CA", "UK", "US"}
	for i, p := range res.Portals {
		if p.Portal != names[i] {
			t.Errorf("portal %d = %s, want %s", i, p.Portal, names[i])
		}
	}
}

func TestFunnelShape(t *testing.T) {
	// Table 1: CA/UK/US have far fewer downloadable than advertised
	// tables; SG downloads almost everything.
	sg := portal(t, "SG").Sizes
	ca := portal(t, "CA").Sizes
	if sg.Tables == 0 || ca.Tables == 0 {
		t.Fatal("funnel not measured")
	}
	sgRate := float64(sg.Downloadable) / float64(sg.Tables)
	caRate := float64(ca.Downloadable) / float64(ca.Tables)
	if sgRate < 0.9 {
		t.Errorf("SG downloadable rate = %.2f, want ~0.99", sgRate)
	}
	if caRate > 0.7 {
		t.Errorf("CA downloadable rate = %.2f, want ~0.41", caRate)
	}
	if ca.Readable > ca.Downloadable || ca.Downloadable > ca.Tables {
		t.Errorf("funnel not monotone: %+v", ca)
	}
}

func TestCompressionRatio(t *testing.T) {
	// §3.1: ~1:5 average compression.
	for _, p := range study(t).Portals {
		if p.Sizes.CompressedBytes == 0 {
			t.Fatalf("%s: no compression measured", p.Portal)
		}
		ratio := float64(p.Sizes.TotalBytes) / float64(p.Sizes.CompressedBytes)
		if ratio < 2 || ratio > 30 {
			t.Errorf("%s: compression ratio %.1f outside plausible band", p.Portal, ratio)
		}
	}
}

func TestTableSizeShape(t *testing.T) {
	// Table 2: medians are far below averages (skew), and US rows
	// median is the largest.
	us := portal(t, "US").TableSizes
	sg := portal(t, "SG").TableSizes
	if us.AvgRows <= us.MedianRows {
		t.Errorf("US rows: avg %.0f should exceed median %.0f (skew)", us.AvgRows, us.MedianRows)
	}
	if us.MedianRows <= sg.MedianRows {
		t.Errorf("US median rows (%.0f) should exceed SG (%.0f)", us.MedianRows, sg.MedianRows)
	}
	if sg.MedianCols > 7 {
		t.Errorf("SG median cols = %.0f, want small (~4-5)", sg.MedianCols)
	}
}

func TestNullShape(t *testing.T) {
	// Figure 4: SG nearly null-free; others ~half of columns have nulls.
	sg := portal(t, "SG").Nulls
	ca := portal(t, "CA").Nulls
	if sg.FracColsWithNulls > 0.2 {
		t.Errorf("SG null columns = %.2f", sg.FracColsWithNulls)
	}
	if ca.FracColsWithNulls < 0.3 {
		t.Errorf("CA null columns = %.2f, want ~0.5", ca.FracColsWithNulls)
	}
	if ca.FracColsAllNull == 0 {
		t.Error("CA should have entirely-null columns")
	}
}

func TestMetadataShape(t *testing.T) {
	sg := portal(t, "SG").Metadata
	us := portal(t, "US").Metadata
	if sg.Structured < 0.99 {
		t.Errorf("SG structured metadata = %.2f, want 1.0", sg.Structured)
	}
	if us.Structured > 0.01 {
		t.Errorf("US structured metadata = %.2f, want 0", us.Structured)
	}
	if us.Lacking < 0.5 {
		t.Errorf("US lacking metadata = %.2f, want ~0.73", us.Lacking)
	}
}

func TestUniquenessShape(t *testing.T) {
	// Table 4: text columns repeat much more than numeric columns.
	for _, p := range study(t).Portals {
		txt := p.Uniqueness["text"]
		num := p.Uniqueness["number"]
		if txt.Columns == 0 || num.Columns == 0 {
			t.Fatalf("%s: missing class stats", p.Portal)
		}
		if txt.MedianUniqueness >= num.MedianUniqueness {
			t.Errorf("%s: text median uniqueness (%.2f) should be below numeric (%.2f)",
				p.Portal, txt.MedianUniqueness, num.MedianUniqueness)
		}
	}
}

func TestKeyDistShape(t *testing.T) {
	// Figure 6: a large fraction of tables lack a single-column key.
	for _, p := range study(t).Portals {
		dist := p.KeySizeDist
		total := 0
		for _, n := range dist {
			total += n
		}
		if total == 0 {
			t.Fatalf("%s: empty key distribution", p.Portal)
		}
		if total < 20 {
			continue // too few subset tables at test scale for a stable fraction
		}
		noSingle := float64(total-dist[1]) / float64(total)
		if noSingle < 0.02 || noSingle > 0.95 {
			t.Errorf("%s: no-single-key fraction %.2f implausible", p.Portal, noSingle)
		}
	}
}

func TestFDShape(t *testing.T) {
	// Table 5: the majority of tables have a non-trivial FD, and
	// decomposition yields > 2 sub-tables on average with uniqueness
	// gains > 1.
	for _, p := range study(t).Portals {
		if p.FD.Tables == 0 {
			t.Fatalf("%s: no FD subset", p.Portal)
		}
		if p.FD.WithFDPct < 0.4 {
			t.Errorf("%s: FD prevalence %.2f, want majority", p.Portal, p.FD.WithFDPct)
		}
		if p.FD.WithSimpleFDPct > p.FD.WithFDPct {
			t.Errorf("%s: simple-FD pct exceeds FD pct", p.Portal)
		}
		if p.FD.AvgDecomposed < 1.5 {
			t.Errorf("%s: avg decomposed %.2f, want > 1.5", p.Portal, p.FD.AvgDecomposed)
		}
		if p.FD.AvgUniquenessGain <= 1 {
			t.Errorf("%s: uniqueness gain %.2f, want > 1", p.Portal, p.FD.AvgUniquenessGain)
		}
	}
}

func TestJoinShape(t *testing.T) {
	// Table 6: joinable columns are mostly non-key; a large fraction of
	// tables is joinable.
	for _, p := range study(t).Portals {
		j := p.Join
		if j.Pairs == 0 {
			t.Fatalf("%s: no joinable pairs", p.Portal)
		}
		if j.JoinableTablesPct < 0.25 || j.JoinableTablesPct > 0.9 {
			t.Errorf("%s: joinable tables %.2f outside band", p.Portal, j.JoinableTablesPct)
		}
		if j.NonkeyJoinablePct < 0.45 {
			t.Errorf("%s: non-key joinable fraction %.2f, want majority", p.Portal, j.NonkeyJoinablePct)
		}
		if j.KeyJoinable+j.NonkeyJoinable != j.JoinableCols {
			t.Errorf("%s: key/nonkey split inconsistent", p.Portal)
		}
	}
}

func TestExpansionShape(t *testing.T) {
	// Figure 8: the US median expansion dwarfs CA's and UK's.
	us := portal(t, "US").Join.ExpansionLV.Median
	ca := portal(t, "CA").Join.ExpansionLV.Median
	uk := portal(t, "UK").Join.ExpansionLV.Median
	if us < 2*ca || us < 2*uk {
		t.Errorf("US expansion median %.1f should dwarf CA %.1f and UK %.1f", us, ca, uk)
	}
	if ca > 8 || uk > 8 {
		t.Errorf("CA/UK expansion medians should be small: %.1f %.1f", ca, uk)
	}
}

func TestLabelShape(t *testing.T) {
	// Tables 7–9 on CA/UK/US (the paper drops SG): accidental pairs
	// dominate; intra-dataset useful rate exceeds inter; nonkey-nonkey
	// is the most accidental combo.
	for _, name := range []string{"CA", "UK", "US"} {
		p := portal(t, name)
		l := p.Labels
		if l.Samples < 12 {
			t.Fatalf("%s: only %d samples", name, l.Samples)
		}
		if l.Overall.Accidental() < 0.6 {
			t.Errorf("%s: accidental rate %.2f, want overwhelming majority", name, l.Overall.Accidental())
		}
		inter, intra := l.Locality[0], l.Locality[1]
		if intra.N > 3 && inter.N > 3 && intra.Useful < inter.Useful {
			t.Errorf("%s: intra useful (%.2f) below inter (%.2f)", name, intra.Useful, inter.Useful)
		}
		kk, nn := l.Combos[0], l.Combos[2]
		if kk.N > 3 && nn.N > 3 && kk.Useful < nn.Useful {
			t.Errorf("%s: key-key useful (%.2f) below nonkey-nonkey (%.2f)", name, kk.Useful, nn.Useful)
		}
		// Inter-dataset pairs can never contain U-Acc == 0 while intra has none.
		if intra.N > 0 && intra.UAcc > 0 {
			t.Errorf("%s: intra-dataset pairs cannot be unrelated (U-Acc %.2f)", name, intra.UAcc)
		}
	}
}

func TestTypeGroupShape(t *testing.T) {
	// Table 10: incremental integer joins are (almost) never useful.
	for _, name := range []string{"CA", "UK", "US"} {
		p := portal(t, name)
		for _, d := range p.Labels.Types {
			if d.Group == "incremental integer" && d.N >= 5 && d.Useful > 0.25 {
				t.Errorf("%s: incremental integer useful rate %.2f, want ~0", name, d.Useful)
			}
		}
	}
}

func TestPredictorBeatsBaseline(t *testing.T) {
	// The paper's recommended signals must filter better than raw value
	// overlap: higher precision on the useful class.
	for _, name := range []string{"CA", "UK", "US"} {
		l := portal(t, name).Labels
		if l.Predictor.TP+l.Predictor.FP == 0 {
			continue // predictor too conservative on this sample
		}
		if l.Predictor.Precision() <= l.Baseline.Precision() {
			t.Errorf("%s: predictor precision %.2f not above baseline %.2f",
				name, l.Predictor.Precision(), l.Baseline.Precision())
		}
	}
}

func TestUnionShape(t *testing.T) {
	// Table 11: the majority of tables are unionable; union labels are
	// overwhelmingly useful.
	for _, p := range study(t).Portals {
		u := p.Union
		if u.UnionableTablesPct < 0.3 || u.UnionableTablesPct > 0.95 {
			t.Errorf("%s: unionable fraction %.2f outside band", p.Portal, u.UnionableTablesPct)
		}
		if u.UnionableSchemas == 0 || u.UniqueSchemas == 0 {
			t.Errorf("%s: schema counts missing", p.Portal)
		}
		// SG's standardized schemas make a large share of its union
		// pairs accidental (§6); elsewhere useful unions dominate.
		minUseful := 0.5
		if p.Portal == "SG" {
			minUseful = 0.1
		}
		if p.UnionLabels.N > 5 && p.UnionLabels.Useful < minUseful {
			t.Errorf("%s: union useful rate %.2f, want ≥ %.2f", p.Portal, p.UnionLabels.Useful, minUseful)
		}
	}
}

func TestGrowthMonotone(t *testing.T) {
	uk := portal(t, "UK")
	if len(uk.Growth) < 3 {
		t.Fatalf("UK growth has %d points", len(uk.Growth))
	}
	for i := 1; i < len(uk.Growth); i++ {
		if uk.Growth[i].Cumulative < uk.Growth[i-1].Cumulative {
			t.Error("growth must be cumulative")
		}
	}
}

func TestSizePercentilesShape(t *testing.T) {
	for _, p := range study(t).Portals {
		pts := p.SizePercentiles
		if len(pts) != 10 {
			t.Fatalf("%s: %d percentile points", p.Portal, len(pts))
		}
		// The top decile must hold a disproportionate share (skew).
		p90 := pts[8].Cumulative
		p100 := pts[9].Cumulative
		if p100 <= p90 {
			t.Errorf("%s: no mass above p90", p.Portal)
		}
		share := float64(p100-p90) / float64(p100)
		if share < 0.22 {
			t.Errorf("%s: top decile share %.2f, want heavy skew", p.Portal, share)
		}
	}
}
