//go:build race

package core

// raceEnabled scales the heavier test fixtures down when the race
// detector (with its ~10x slowdown) is on, keeping `go test -race`
// within a few minutes on small machines.
const raceEnabled = true
