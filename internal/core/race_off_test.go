//go:build !race

package core

// raceEnabled scales the heavier test fixtures down when the race
// detector (with its ~10x slowdown) is on.
const raceEnabled = false
