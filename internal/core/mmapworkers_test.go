package core_test

import (
	"bytes"
	"reflect"
	"testing"

	"ogdp/internal/core"
	"ogdp/internal/diskcorpus"
	"ogdp/internal/gen"
	"ogdp/internal/report"
)

// TestMmapStudyParityAcrossWorkers is the mmap half of the storage
// contract: a corpus served from its colstore files (encodings backed
// by the read-only mapping, rows never materialized up front) must
// produce the identical PortalResult and identical report bytes at any
// worker count. Combined with TestDiskRoundtripStudyParity (disk load
// equals in-memory generation), this pins the full chain: in-memory ==
// CSV reload == mmap reload, sequential == oversubscribed.
func TestMmapStudyParityAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("study run")
	}
	dir := t.TempDir()
	c := gen.Generate(gen.CA(), 0.05, 7)
	if _, err := gen.SaveCorpus(dir, c); err != nil {
		t.Fatal(err)
	}

	run := func(workers int) (core.PortalResult, string) {
		src, err := diskcorpus.LoadStudy(dir)
		if err != nil {
			t.Fatal(err)
		}
		loaded := src.(*gen.Corpus)
		for _, m := range loaded.Metas {
			if !m.Table.Encoded() {
				t.Fatalf("%s not mmap-served; the test would not exercise the colstore path", m.Table.Name)
			}
		}
		opts := core.Options{
			Scale: 0.05, Seed: 7, Workers: workers,
			FetchFunnel: true, Compress: true,
			MaxFDTables: 10, SamplePerCell: 2, UnionSamples: 4,
		}
		res := core.RunPortal(src, opts)
		res.Corpus = nil
		var buf bytes.Buffer
		report.All(&buf, &core.StudyResult{Options: opts, Portals: []core.PortalResult{res}})
		return res, buf.String()
	}

	seq, seqReport := run(1)
	par, parReport := run(8)
	if !reflect.DeepEqual(seq, par) {
		t.Error("PortalResult differs between Workers=1 and Workers=8 over the mmap-loaded corpus")
	}
	if seqReport != parReport {
		i := 0
		for i < len(seqReport) && i < len(parReport) && seqReport[i] == parReport[i] {
			i++
		}
		t.Fatalf("report bytes differ at offset %d: %q vs %q", i,
			seqReport[max(0, i-40):min(i+40, len(seqReport))],
			parReport[max(0, i-40):min(i+40, len(parReport))])
	}
	if seq.Join.Pairs == 0 || seq.Sizes.Readable == 0 {
		t.Fatalf("parity comparison is vacuous: %d pairs, %d readable", seq.Join.Pairs, seq.Sizes.Readable)
	}
}
