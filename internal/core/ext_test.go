package core

import (
	"testing"

	"ogdp/internal/gen"
)

func TestExtensionsComputed(t *testing.T) {
	corpus := gen.Generate(gen.CA(), 0.12, 21)
	pr := RunPortal(corpus, Options{Scale: 0.12, Seed: 21, Extensions: true, Sensitivity: true, MaxFDTables: 30, SamplePerCell: 3, UnionSamples: 5})
	if pr.Ext == nil {
		t.Fatal("extensions not computed")
	}
	if pr.Ext.INDs == 0 {
		t.Error("no INDs found on CA corpus")
	}
	if pr.Ext.ForeignKeyCandidates == 0 {
		t.Error("no fk candidates on CA corpus")
	}
	if pr.Ext.PlantedFKRecovered <= 0.2 {
		t.Errorf("planted fk recovery = %.2f, want substantial", pr.Ext.PlantedFKRecovered)
	}
	if pr.Ext.FuzzyUnionTables < pr.Ext.ExactUnionTables {
		t.Errorf("fuzzy union tables (%d) below exact (%d)", pr.Ext.FuzzyUnionTables, pr.Ext.ExactUnionTables)
	}
	if pr.Ext.MeanFDPlausibility <= 0.2 || pr.Ext.MeanFDPlausibility > 1 {
		t.Errorf("mean FD plausibility = %.2f", pr.Ext.MeanFDPlausibility)
	}
	if pr.JoinAt07 == nil || pr.JoinAt07.Pairs < pr.Join.Pairs {
		t.Error("sensitivity join stats missing or inconsistent")
	}
}
