package core

import (
	"reflect"
	"testing"

	"ogdp/internal/diskcorpus"
	"ogdp/internal/gen"
)

// TestDiskRoundtripStudyParity is the storage-layer contract of the
// corpus.Source interface: generating a portal, saving it to disk,
// reloading it through diskcorpus.LoadStudy, and re-running the study
// must reproduce the in-memory PortalResult exactly — every table,
// figure, label distribution, and funnel count. This exercises the
// whole save/load path (CSV serialization roundtrip, provenance
// manifest, profile restoration for the servable funnel portal).
func TestDiskRoundtripStudyParity(t *testing.T) {
	opts := Options{
		Scale:         0.08,
		Seed:          11,
		FetchFunnel:   true,
		Compress:      true,
		Sensitivity:   true,
		Extensions:    true,
		MaxFDTables:   20,
		SamplePerCell: 3,
		UnionSamples:  6,
	}
	if raceEnabled {
		opts.Scale = 0.04
		opts.MaxFDTables = 8
		opts.Sensitivity = false
		opts.Extensions = false
	}
	c := gen.Generate(gen.CA(), opts.Scale, opts.Seed)
	want := RunPortal(c, opts)

	dir := t.TempDir()
	if _, err := gen.SaveCorpus(dir, c); err != nil {
		t.Fatal(err)
	}
	src, err := diskcorpus.LoadStudy(dir)
	if err != nil {
		t.Fatal(err)
	}
	loaded, ok := src.(*gen.Corpus)
	if !ok {
		t.Fatalf("LoadStudy returned %T despite provenance.json, want *gen.Corpus", src)
	}
	if loaded.PortalName != c.PortalName || len(loaded.Metas) != len(c.Metas) {
		t.Fatalf("reloaded corpus shape differs: %s/%d tables vs %s/%d",
			loaded.PortalName, len(loaded.Metas), c.PortalName, len(c.Metas))
	}
	got := RunPortal(src, opts)

	// The corpora are deeply equal but hold separate lazily-filled
	// profile caches; everything else must match exactly.
	want.Corpus, got.Corpus = nil, nil
	if !reflect.DeepEqual(want, got) {
		t.Error("PortalResult differs between in-memory and disk-reloaded corpus")
		for _, f := range []struct {
			name string
			a, b any
		}{
			{"Sizes", want.Sizes, got.Sizes},
			{"SizePercentiles", want.SizePercentiles, got.SizePercentiles},
			{"Growth", want.Growth, got.Growth},
			{"TableSizes", want.TableSizes, got.TableSizes},
			{"Nulls", want.Nulls, got.Nulls},
			{"Metadata", want.Metadata, got.Metadata},
			{"Uniqueness", want.Uniqueness, got.Uniqueness},
			{"KeySizeDist", want.KeySizeDist, got.KeySizeDist},
			{"FD", want.FD, got.FD},
			{"Join", want.Join, got.Join},
			{"JoinAt07", want.JoinAt07, got.JoinAt07},
			{"Labels", want.Labels, got.Labels},
			{"Union", want.Union, got.Union},
			{"UnionLabels", want.UnionLabels, got.UnionLabels},
			{"Ext", want.Ext, got.Ext},
		} {
			if !reflect.DeepEqual(f.a, f.b) {
				t.Errorf("  field %s: %+v != %+v", f.name, f.a, f.b)
			}
		}
	}

	// Sanity: the comparison must not be vacuous. The race-scaled
	// fixture is too small to yield label samples, so that floor only
	// binds at full scale.
	if want.Join.Pairs == 0 || want.Sizes.Readable == 0 || (!raceEnabled && want.Labels.Samples == 0) {
		t.Fatalf("parity comparison is vacuous: %d pairs, %d samples, %d readable",
			want.Join.Pairs, want.Labels.Samples, want.Sizes.Readable)
	}
}
