package keys

import (
	"math/rand"
	"strconv"
	"testing"

	"ogdp/internal/table"
)

func TestKeyColumns(t *testing.T) {
	tb := table.FromRows("t", []string{"id", "city", "code"}, [][]string{
		{"1", "Waterloo", "A"},
		{"2", "Toronto", "B"},
		{"3", "Waterloo", "C"},
	})
	ks := KeyColumns(tb)
	if len(ks) != 2 || ks[0] != 0 || ks[1] != 2 {
		t.Errorf("KeyColumns = %v", ks)
	}
	if !HasKeyColumn(tb) {
		t.Error("HasKeyColumn = false")
	}
}

func TestMinCandidateKeySizeOne(t *testing.T) {
	tb := table.FromRows("t", []string{"id", "v"}, [][]string{{"1", "a"}, {"2", "a"}})
	if got := MinCandidateKeySize(tb, 3); got != 1 {
		t.Errorf("size = %d, want 1", got)
	}
}

func TestMinCandidateKeySizeTwo(t *testing.T) {
	// (city, year) is a key; neither column alone is.
	tb := table.FromRows("t", []string{"city", "year", "pop"}, [][]string{
		{"Waterloo", "2020", "100"},
		{"Waterloo", "2021", "110"},
		{"Toronto", "2020", "100"},
		{"Toronto", "2021", "110"},
	})
	if got := MinCandidateKeySize(tb, 3); got != 2 {
		t.Errorf("size = %d, want 2", got)
	}
}

func TestMinCandidateKeySizeThree(t *testing.T) {
	// Three binary columns: all 8 combinations distinct only jointly.
	var rows [][]string
	for i := 0; i < 8; i++ {
		rows = append(rows, []string{
			strconv.Itoa(i & 1), strconv.Itoa((i >> 1) & 1), strconv.Itoa((i >> 2) & 1),
		})
	}
	tb := table.FromRows("t", []string{"a", "b", "c"}, rows)
	if got := MinCandidateKeySize(tb, 3); got != 3 {
		t.Errorf("size = %d, want 3", got)
	}
	// With maxSize 2 there is no key.
	if got := MinCandidateKeySize(tb, 2); got != 0 {
		t.Errorf("maxSize=2: size = %d, want 0", got)
	}
}

func TestNoCandidateKey(t *testing.T) {
	// Duplicate rows: no subset of columns can be a key.
	tb := table.FromRows("t", []string{"a", "b"}, [][]string{
		{"x", "y"},
		{"x", "y"},
	})
	if got := MinCandidateKeySize(tb, 3); got != 0 {
		t.Errorf("size = %d, want 0", got)
	}
}

func TestNullBlocksSingleKey(t *testing.T) {
	tb := table.FromRows("t", []string{"id", "v"}, [][]string{
		{"1", "a"}, {"", "b"}, {"3", "a"},
	})
	// id has a null, so it is not a single key; v repeats; but {id, v}
	// distinguishes all rows (the null cell counts as a value at the
	// instance level).
	if HasKeyColumn(tb) {
		t.Error("column with null must not be a key")
	}
	if got := MinCandidateKeySize(tb, 3); got != 2 {
		t.Errorf("size = %d, want 2", got)
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	empty := table.New("e", []string{"a"})
	if got := MinCandidateKeySize(empty, 3); got != 0 {
		t.Errorf("empty table size = %d", got)
	}
	noCols := table.New("n", nil)
	if got := MinCandidateKeySize(noCols, 3); got != 0 {
		t.Errorf("no-column table size = %d", got)
	}
}

func TestMaxSizeClamped(t *testing.T) {
	tb := table.FromRows("t", []string{"a"}, [][]string{{"x"}, {"y"}})
	if got := MinCandidateKeySize(tb, 5); got != 1 {
		t.Errorf("clamped search = %d", got)
	}
}

func TestSizeDistribution(t *testing.T) {
	t1 := table.FromRows("k1", []string{"id"}, [][]string{{"1"}, {"2"}})
	t2 := table.FromRows("k0", []string{"a"}, [][]string{{"x"}, {"x"}})
	dist := SizeDistribution([]*table.Table{t1, t2, t1}, 3)
	if dist[1] != 2 || dist[0] != 1 {
		t.Errorf("dist = %v", dist)
	}
}

// TestAgainstBruteForce cross-checks MinCandidateKeySize against an
// exhaustive row-comparison implementation on random small tables.
func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		nCols := 2 + rng.Intn(4)
		nRows := 2 + rng.Intn(30)
		cols := make([]string, nCols)
		for c := range cols {
			cols[c] = string(rune('a' + c))
		}
		rows := make([][]string, nRows)
		for r := range rows {
			rows[r] = make([]string, nCols)
			for c := range rows[r] {
				rows[r][c] = strconv.Itoa(rng.Intn(4))
			}
		}
		tb := table.FromRows("t", cols, rows)
		got := MinCandidateKeySize(tb, 3)
		want := bruteMinKey(rows, nCols, 3)
		if got != want {
			t.Fatalf("trial %d: got %d want %d rows=%v", trial, got, want, rows)
		}
	}
}

func bruteMinKey(rows [][]string, nCols, maxSize int) int {
	for size := 1; size <= maxSize && size <= nCols; size++ {
		combos := combinations(nCols, size)
		for _, combo := range combos {
			seen := make(map[string]struct{})
			dup := false
			for _, row := range rows {
				key := ""
				for _, c := range combo {
					key += row[c] + "\x00"
				}
				if _, ok := seen[key]; ok {
					dup = true
					break
				}
				seen[key] = struct{}{}
			}
			if !dup {
				return size
			}
		}
	}
	return 0
}

func combinations(n, k int) [][]int {
	var out [][]int
	combo := make([]int, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			out = append(out, append([]int(nil), combo...))
			return
		}
		for i := start; i < n; i++ {
			combo[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
	return out
}

func BenchmarkMinCandidateKeySize(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	nRows := 5000
	rows := make([][]string, nRows)
	for r := range rows {
		rows[r] = []string{
			strconv.Itoa(rng.Intn(50)),
			strconv.Itoa(rng.Intn(50)),
			strconv.Itoa(rng.Intn(50)),
			strconv.Itoa(rng.Intn(10)),
			strconv.Itoa(rng.Intn(10)),
		}
	}
	tb := table.FromRows("t", []string{"a", "b", "c", "d", "e"}, rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MinCandidateKeySize(tb, 3)
	}
}
