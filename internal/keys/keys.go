// Package keys discovers key columns and minimal composite candidate
// keys, the §4.1 analysis of the paper: which tables have a
// single-column key, which need composite keys of size 2 or 3, and
// which have no candidate key of size ≤ 3 at all (Figure 6).
package keys

import (
	"context"

	"ogdp/internal/parallel"
	"ogdp/internal/table"
)

// MaxCandidateKeySize is the largest composite key the paper searches
// for.
const MaxCandidateKeySize = 3

// KeyColumns returns the indices of single-column keys: columns whose
// uniqueness score is 1.0 with no nulls.
func KeyColumns(t *table.Table) []int {
	var out []int
	for c := range t.Cols {
		if t.Profile(c).IsKey() {
			out = append(out, c)
		}
	}
	return out
}

// HasKeyColumn reports whether the table has at least one single-column
// key.
func HasKeyColumn(t *table.Table) bool {
	for c := range t.Cols {
		if t.Profile(c).IsKey() {
			return true
		}
	}
	return false
}

// MinCandidateKeySize returns the size of the smallest candidate key of
// the table, searching keys of up to maxSize columns (use
// MaxCandidateKeySize for the paper's setting). It returns 0 when no
// candidate key of size ≤ maxSize exists, and 0 for empty tables.
//
// A column set K is a candidate key when the projection onto K has as
// many distinct tuples as the table has rows. Minimality over the
// searched sizes is implied by returning the smallest size found.
func MinCandidateKeySize(t *table.Table, maxSize int) int {
	n := t.NumRows()
	if n == 0 || t.NumCols() == 0 {
		return 0
	}
	if maxSize > t.NumCols() {
		maxSize = t.NumCols()
	}

	// Size 1: use cached profiles.
	for c := range t.Cols {
		if t.Profile(c).IsKey() {
			return 1
		}
	}
	if maxSize < 2 {
		return 0
	}

	// Prune: a column whose distinct count is 1 can never help
	// distinguish tuples beyond what other columns do... it can still
	// participate but adds nothing; exclude constant columns to shrink
	// the search space.
	var useful []int
	for c := range t.Cols {
		if t.DistinctCount([]int{c}) > 1 {
			useful = append(useful, c)
		}
	}

	for size := 2; size <= maxSize; size++ {
		if found := searchSize(t, useful, size, n); found {
			return size
		}
	}
	return 0
}

// searchSize checks whether any column combination of exactly the given
// size is a key.
func searchSize(t *table.Table, cols []int, size, nRows int) bool {
	combo := make([]int, size)
	var rec func(start, depth int) bool
	rec = func(start, depth int) bool {
		if depth == size {
			return t.DistinctCount(combo) == nRows
		}
		for i := start; i <= len(cols)-(size-depth); i++ {
			combo[depth] = cols[i]
			if rec(i+1, depth+1) {
				return true
			}
		}
		return false
	}
	return rec(0, 0)
}

// SizeDistribution bins a set of tables by minimal candidate key size:
// index 1..maxSize hold counts of tables whose smallest key has that
// size; index 0 holds tables with no key of size ≤ maxSize.
func SizeDistribution(tables []*table.Table, maxSize int) []int {
	return SizeDistributionParallel(tables, maxSize, 1)
}

// SizeDistributionParallel fans the per-table minimal-key search out
// over workers goroutines (0 = GOMAXPROCS, 1 = sequential). Each
// table's search is independent, so the merged histogram is identical
// for every worker count.
//
// Callers that already run inside a fan-out (like core's fused §4
// pass) should instead call MinCandidateKeySize per unit and fold with
// FoldSizeDistribution, avoiding a nested pool.
func SizeDistributionParallel(tables []*table.Table, maxSize, workers int) []int {
	sizes := parallel.MustMap(parallel.Map(parallel.WithPool(context.Background(), "keys"),
		len(tables), workers, func(i int) int {
			return MinCandidateKeySize(tables[i], maxSize)
		}))
	return FoldSizeDistribution(sizes, maxSize)
}

// FoldSizeDistribution bins per-table minimal key sizes (as returned
// by MinCandidateKeySize) into the Figure 6 histogram: index 1..maxSize
// count tables whose smallest key has that size; index 0 counts tables
// with no key of size ≤ maxSize.
func FoldSizeDistribution(sizes []int, maxSize int) []int {
	dist := make([]int, maxSize+1)
	for _, s := range sizes {
		dist[s]++
	}
	return dist
}
