// Package profile computes the general characteristics of a portal
// corpus reported in §3 and §4.1 of the paper: portal and table sizes
// (Tables 1–2, Figures 1–3), null value analysis (Figure 4), metadata
// availability (Table 3), compression ratios, and uniqueness/key
// statistics (Figure 5, Table 4).
package profile

import (
	"bytes"
	"compress/gzip"
	"sort"
	"time"

	"ogdp/internal/stats"
	"ogdp/internal/table"
	"ogdp/internal/values"
)

// TableInfo is one corpus table with the portal-level context the
// profiling needs.
type TableInfo struct {
	Table     *table.Table
	DatasetID string
	Published time.Time
	// RawSize is the serialized CSV size in bytes.
	RawSize int64
	// Metadata is the dataset's dictionary style (ckan.MetadataStyle
	// as an int: 0 lacking, 1 structured, 2 unstructured, 3 outside).
	Metadata int
}

// Corpus is the profiling input: the readable tables of one portal.
type Corpus struct {
	Portal string
	Tables []TableInfo
	// Funnel carries the acquisition pipeline counts when the corpus
	// came through the CKAN client (optional).
	Funnel FunnelCounts
}

// FunnelCounts mirrors the downloadable/readable funnel of Table 1.
type FunnelCounts struct {
	Datasets     int
	Tables       int
	Downloadable int
	Readable     int
}

// PortalSizes is one portal's row of Table 1.
type PortalSizes struct {
	Portal             string
	Datasets           int
	AvgTablesPerDS     float64
	MaxTablesPerDS     int
	Tables             int
	Downloadable       int
	Readable           int
	Columns            int
	TotalBytes         int64
	CompressedBytes    int64
	LargestTableBytes  int64
	CompressionSampled bool
	// PaddedCells and TruncatedCells total the row-normalization fixes
	// the corpus's tables recorded at ingest (table.RaggedCells): cells
	// invented to pad short rows and cells dropped from long rows.
	PaddedCells    int64
	TruncatedCells int64
}

// Sizes computes Table 1 for the corpus. Compression is measured with
// gzip over each table's CSV serialization (sampled for very large
// corpora: every table is counted, but bodies over sampleCap bytes are
// compressed on a prefix and extrapolated).
func Sizes(c *Corpus, compress bool) PortalSizes {
	ps := PortalSizes{Portal: c.Portal}
	perDS := map[string]int{}
	for _, ti := range c.Tables {
		perDS[ti.DatasetID]++
		ps.Columns += ti.Table.NumCols()
		ps.TotalBytes += ti.RawSize
		if ti.RawSize > ps.LargestTableBytes {
			ps.LargestTableBytes = ti.RawSize
		}
		ps.PaddedCells += int64(ti.Table.Ragged.Padded)
		ps.TruncatedCells += int64(ti.Table.Ragged.Truncated)
	}
	ps.Datasets = len(perDS)
	maxPerDS := 0
	for _, n := range perDS {
		if n > maxPerDS {
			maxPerDS = n
		}
	}
	ps.MaxTablesPerDS = maxPerDS
	if ps.Datasets > 0 {
		ps.AvgTablesPerDS = float64(len(c.Tables)) / float64(ps.Datasets)
	}
	if c.Funnel.Datasets > 0 {
		ps.Datasets = c.Funnel.Datasets
	}
	ps.Tables = c.Funnel.Tables
	ps.Downloadable = c.Funnel.Downloadable
	ps.Readable = c.Funnel.Readable
	if ps.Tables == 0 {
		ps.Tables = len(c.Tables)
		ps.Downloadable = len(c.Tables)
		ps.Readable = len(c.Tables)
	}
	if compress {
		ps.CompressedBytes = compressedSize(c)
		ps.CompressionSampled = true
	}
	return ps
}

// compressedSize gzips each table's CSV body and sums the output
// sizes. To bound cost, bodies are reconstructed from tables (the
// corpus does not keep raw bytes) and large tables are compressed on a
// sampled prefix of rows with linear extrapolation.
func compressedSize(c *Corpus) int64 {
	var total int64
	for _, ti := range c.Tables {
		total += gzipSizeOf(ti.Table, ti.RawSize)
	}
	return total
}

const sampleRows = 4096

func gzipSizeOf(t *table.Table, rawSize int64) int64 {
	n := t.NumRows()
	sample := t
	frac := 1.0
	if n > sampleRows {
		sample = t.PrefixShared(sampleRows)
		frac = float64(n) / float64(sampleRows)
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	writeCSV(zw, sample)
	zw.Close()
	return int64(float64(buf.Len()) * frac)
}

// writeCSV emits a minimal CSV; quoting is unnecessary for size
// estimation purposes, but commas/newlines in values are escaped to
// keep the estimate honest.
func writeCSV(w *gzip.Writer, t *table.Table) {
	row := make([]byte, 0, 256)
	row = appendRow(row[:0], t.Cols)
	w.Write(row)
	vals := make([]string, t.NumCols())
	for r := 0; r < t.NumRows(); r++ {
		for c := range vals {
			vals[c] = t.Value(c, r)
		}
		row = appendRow(row[:0], vals)
		w.Write(row)
	}
}

func appendRow(buf []byte, vals []string) []byte {
	for i, v := range vals {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, v...)
	}
	return append(buf, '\n')
}

// TableSizeStats is Table 2: per-portal column and row statistics.
type TableSizeStats struct {
	Portal     string
	AvgCols    float64
	MedianCols float64
	MaxCols    int
	AvgRows    float64
	MedianRows float64
	MaxRows    int
}

// TableSizes computes Table 2.
func TableSizes(c *Corpus) TableSizeStats {
	st := TableSizeStats{Portal: c.Portal}
	var cols, rows []float64
	for _, ti := range c.Tables {
		nc, nr := ti.Table.NumCols(), ti.Table.NumRows()
		cols = append(cols, float64(nc))
		rows = append(rows, float64(nr))
		if nc > st.MaxCols {
			st.MaxCols = nc
		}
		if nr > st.MaxRows {
			st.MaxRows = nr
		}
	}
	st.AvgCols = stats.Mean(cols)
	st.MedianCols = stats.Median(cols)
	st.AvgRows = stats.Mean(rows)
	st.MedianRows = stats.Median(rows)
	return st
}

// SizePercentile is one point of Figure 1: when keeping only tables up
// to the given size percentile, the cut-off table size and the
// cumulative portal size.
type SizePercentile struct {
	Percentile float64
	CutoffSize int64
	Cumulative int64
}

// SizePercentiles computes Figure 1 at the given percentile steps
// (e.g. 10, 20, ..., 100).
func SizePercentiles(c *Corpus, steps []float64) []SizePercentile {
	sizes := make([]int64, 0, len(c.Tables))
	for _, ti := range c.Tables {
		sizes = append(sizes, ti.RawSize)
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	cum := make([]int64, len(sizes))
	var run int64
	for i, s := range sizes {
		run += s
		cum[i] = run
	}
	var out []SizePercentile
	for _, p := range steps {
		if len(sizes) == 0 {
			out = append(out, SizePercentile{Percentile: p})
			continue
		}
		idx := int(p/100*float64(len(sizes))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sizes) {
			idx = len(sizes) - 1
		}
		out = append(out, SizePercentile{
			Percentile: p,
			CutoffSize: sizes[idx],
			Cumulative: cum[idx],
		})
	}
	return out
}

// GrowthPoint is one year of Figure 2: the portal's cumulative size at
// the end of that year.
type GrowthPoint struct {
	Year       int
	Cumulative int64
}

// Growth computes Figure 2 from dataset publication dates.
func Growth(c *Corpus) []GrowthPoint {
	byYear := map[int]int64{}
	for _, ti := range c.Tables {
		if ti.Published.IsZero() {
			continue
		}
		byYear[ti.Published.Year()] += ti.RawSize
	}
	var years []int
	for y := range byYear {
		years = append(years, y)
	}
	sort.Ints(years)
	var out []GrowthPoint
	var cum int64
	for _, y := range years {
		cum += byYear[y]
		out = append(out, GrowthPoint{Year: y, Cumulative: cum})
	}
	return out
}

// NullStats is Figure 4 for one portal.
type NullStats struct {
	Portal string
	// ColumnNullRatios is the null ratio of every column.
	ColumnNullRatios []float64
	// TableNullRatios is the average null ratio of each table.
	TableNullRatios []float64
	// FracColsWithNulls is the fraction of columns with ≥ 1 null.
	FracColsWithNulls float64
	// FracColsHalfEmpty is the fraction of columns more than half null.
	FracColsHalfEmpty float64
	// FracColsAllNull is the fraction of entirely-null columns.
	FracColsAllNull float64
}

// Nulls computes Figure 4.
func Nulls(c *Corpus) NullStats {
	ns := NullStats{Portal: c.Portal}
	withNull, halfEmpty, allNull, total := 0, 0, 0, 0
	for _, ti := range c.Tables {
		var tblSum float64
		nc := ti.Table.NumCols()
		for ci := 0; ci < nc; ci++ {
			r := ti.Table.Profile(ci).NullRatio()
			ns.ColumnNullRatios = append(ns.ColumnNullRatios, r)
			tblSum += r
			total++
			if r > 0 {
				withNull++
			}
			if r > 0.5 {
				halfEmpty++
			}
			if stats.ApproxEq(r, 1) {
				allNull++
			}
		}
		if nc > 0 {
			ns.TableNullRatios = append(ns.TableNullRatios, tblSum/float64(nc))
		}
	}
	if total > 0 {
		ns.FracColsWithNulls = float64(withNull) / float64(total)
		ns.FracColsHalfEmpty = float64(halfEmpty) / float64(total)
		ns.FracColsAllNull = float64(allNull) / float64(total)
	}
	return ns
}

// MetadataStats is Table 3 for one portal.
type MetadataStats struct {
	Portal       string
	Structured   float64
	Unstructured float64
	Outside      float64
	Lacking      float64
}

// Metadata computes Table 3 over a sample of datasets (the paper used
// 100 per portal; pass 0 to use all datasets).
func Metadata(c *Corpus, sample int) MetadataStats {
	ms := MetadataStats{Portal: c.Portal}
	seen := map[string]int{}
	for _, ti := range c.Tables {
		if _, ok := seen[ti.DatasetID]; !ok {
			seen[ti.DatasetID] = ti.Metadata
		}
	}
	var styles []int
	for _, s := range seen {
		styles = append(styles, s)
	}
	sort.Ints(styles) // deterministic
	if sample > 0 && len(styles) > sample {
		styles = styles[:sample]
	}
	if len(styles) == 0 {
		return ms
	}
	n := float64(len(styles))
	for _, s := range styles {
		switch s {
		case 1:
			ms.Structured++
		case 2:
			ms.Unstructured++
		case 3:
			ms.Outside++
		default:
			ms.Lacking++
		}
	}
	ms.Structured /= n
	ms.Unstructured /= n
	ms.Outside /= n
	ms.Lacking /= n
	return ms
}

// UniquenessStats is Table 4 for one broad column class of a portal.
type UniquenessStats struct {
	Class             string // "text", "number", or "all"
	Columns           int
	AvgUnique         float64
	MedianUnique      float64
	MaxUnique         int
	AvgUniqueness     float64
	MedianUniqueness  float64
	FracBelowTenthSco float64 // fraction of columns with score < 0.1
}

// Uniqueness computes Table 4 / Figure 5: uniqueness statistics split
// by the text/number broad classes plus the combined row.
func Uniqueness(c *Corpus) map[string]UniquenessStats {
	classes := map[string]*struct {
		uniques []float64
		scores  []float64
		max     int
	}{
		"text": {}, "number": {}, "all": {},
	}
	add := func(class string, unique int, score float64) {
		s := classes[class]
		s.uniques = append(s.uniques, float64(unique))
		s.scores = append(s.scores, score)
		if unique > s.max {
			s.max = unique
		}
	}
	for _, ti := range c.Tables {
		for ci := range ti.Table.Cols {
			p := ti.Table.Profile(ci)
			class := p.Type.BroadClass()
			if class != "text" && class != "number" {
				continue // all-null columns are outside both classes
			}
			add(class, p.Distinct, p.Uniqueness())
			add("all", p.Distinct, p.Uniqueness())
		}
	}
	out := make(map[string]UniquenessStats, len(classes))
	for name, s := range classes {
		below := 0
		for _, sc := range s.scores {
			if sc < 0.1 {
				below++
			}
		}
		fracBelow := 0.0
		if len(s.scores) > 0 {
			fracBelow = float64(below) / float64(len(s.scores))
		}
		out[name] = UniquenessStats{
			Class:             name,
			Columns:           len(s.uniques),
			AvgUnique:         stats.Mean(s.uniques),
			MedianUnique:      stats.Median(s.uniques),
			MaxUnique:         s.max,
			AvgUniqueness:     stats.Mean(s.scores),
			MedianUniqueness:  stats.Median(s.scores),
			FracBelowTenthSco: fracBelow,
		}
	}
	return out
}

// IsNullValue re-exports the null predicate for convenience.
func IsNullValue(s string) bool { return values.IsNull(s) }
