package profile

import (
	"math"
	"testing"
	"time"

	"ogdp/internal/table"
)

func mkTable(name, ds string, cols []string, rows [][]string) TableInfo {
	t := table.FromRows(name, cols, rows)
	t.DatasetID = ds
	var size int64
	for _, row := range rows {
		for _, v := range row {
			size += int64(len(v) + 1)
		}
	}
	return TableInfo{Table: t, DatasetID: ds, RawSize: size}
}

func testCorpus() *Corpus {
	return &Corpus{
		Portal: "T",
		Tables: []TableInfo{
			mkTable("a.csv", "d1", []string{"id", "v"}, [][]string{
				{"1", "x"}, {"2", ""}, {"3", "x"}, {"4", "n/a"},
			}),
			mkTable("b.csv", "d1", []string{"id", "w", "empty"}, [][]string{
				{"1", "1.5", ""}, {"2", "2.5", ""},
			}),
			mkTable("c.csv", "d2", []string{"k"}, [][]string{
				{"a"}, {"a"}, {"b"},
			}),
		},
	}
}

func TestSizes(t *testing.T) {
	c := testCorpus()
	ps := Sizes(c, false)
	if ps.Datasets != 2 || ps.Columns != 6 {
		t.Errorf("sizes = %+v", ps)
	}
	if ps.AvgTablesPerDS != 1.5 || ps.MaxTablesPerDS != 2 {
		t.Errorf("tables per dataset: %+v", ps)
	}
	if ps.Tables != 3 || ps.Readable != 3 {
		t.Errorf("funnel defaults: %+v", ps)
	}
	if ps.TotalBytes == 0 || ps.LargestTableBytes == 0 {
		t.Errorf("byte sizes: %+v", ps)
	}
}

func TestSizesWithFunnel(t *testing.T) {
	c := testCorpus()
	c.Funnel = FunnelCounts{Datasets: 10, Tables: 20, Downloadable: 8, Readable: 3}
	ps := Sizes(c, false)
	if ps.Datasets != 10 || ps.Tables != 20 || ps.Downloadable != 8 || ps.Readable != 3 {
		t.Errorf("funnel not propagated: %+v", ps)
	}
}

func TestCompression(t *testing.T) {
	// A highly repetitive large table must compress well.
	rows := make([][]string, 20000)
	for i := range rows {
		rows[i] = []string{"Ontario", "same-value", "123"}
	}
	ti := mkTable("rep.csv", "d", []string{"a", "b", "c"}, rows)
	c := &Corpus{Portal: "T", Tables: []TableInfo{ti}}
	ps := Sizes(c, true)
	if !ps.CompressionSampled || ps.CompressedBytes == 0 {
		t.Fatalf("compression missing: %+v", ps)
	}
	ratio := float64(ps.TotalBytes) / float64(ps.CompressedBytes)
	if ratio < 3 {
		t.Errorf("compression ratio = %.1f, want > 3 for repetitive data", ratio)
	}
}

func TestTableSizes(t *testing.T) {
	st := TableSizes(testCorpus())
	if st.MaxCols != 3 || st.MaxRows != 4 {
		t.Errorf("table sizes = %+v", st)
	}
	if st.MedianCols != 2 || st.MedianRows != 3 {
		t.Errorf("medians = %+v", st)
	}
	if math.Abs(st.AvgCols-2.0) > 1e-9 || math.Abs(st.AvgRows-3.0) > 1e-9 {
		t.Errorf("averages = %+v", st)
	}
}

func TestSizePercentiles(t *testing.T) {
	c := &Corpus{Portal: "T"}
	for i := 1; i <= 10; i++ {
		ti := mkTable("t.csv", "d", []string{"a"}, [][]string{{"x"}})
		ti.RawSize = int64(i * 100)
		c.Tables = append(c.Tables, ti)
	}
	pts := SizePercentiles(c, []float64{10, 50, 100})
	if pts[0].CutoffSize != 100 || pts[1].CutoffSize != 500 || pts[2].CutoffSize != 1000 {
		t.Errorf("cutoffs = %+v", pts)
	}
	if pts[2].Cumulative != 5500 {
		t.Errorf("cumulative = %d, want 5500", pts[2].Cumulative)
	}
	if pts[1].Cumulative != 1500 {
		t.Errorf("p50 cumulative = %d, want 1500", pts[1].Cumulative)
	}
	if empty := SizePercentiles(&Corpus{}, []float64{50}); empty[0].CutoffSize != 0 {
		t.Error("empty corpus percentile should be zero")
	}
}

func TestGrowth(t *testing.T) {
	c := testCorpus()
	c.Tables[0].Published = time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC)
	c.Tables[1].Published = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	c.Tables[2].Published = time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)
	pts := Growth(c)
	if len(pts) != 2 || pts[0].Year != 2019 || pts[1].Year != 2020 {
		t.Fatalf("growth = %+v", pts)
	}
	if pts[1].Cumulative <= pts[0].Cumulative {
		t.Error("cumulative growth must be non-decreasing")
	}
}

func TestNulls(t *testing.T) {
	ns := Nulls(testCorpus())
	if len(ns.ColumnNullRatios) != 6 || len(ns.TableNullRatios) != 3 {
		t.Fatalf("null stats = %+v", ns)
	}
	// Columns with nulls: a.v (2/4), b.empty (2/2) -> 2 of 6.
	if math.Abs(ns.FracColsWithNulls-2.0/6) > 1e-9 {
		t.Errorf("FracColsWithNulls = %g", ns.FracColsWithNulls)
	}
	if math.Abs(ns.FracColsAllNull-1.0/6) > 1e-9 {
		t.Errorf("FracColsAllNull = %g", ns.FracColsAllNull)
	}
	if math.Abs(ns.FracColsHalfEmpty-1.0/6) > 1e-9 {
		t.Errorf("FracColsHalfEmpty = %g (only fully-null column exceeds half)", ns.FracColsHalfEmpty)
	}
}

func TestMetadata(t *testing.T) {
	c := testCorpus()
	c.Tables[0].Metadata = 1
	c.Tables[1].Metadata = 1 // same dataset d1; first wins
	c.Tables[2].Metadata = 2
	ms := Metadata(c, 0)
	if math.Abs(ms.Structured-0.5) > 1e-9 || math.Abs(ms.Unstructured-0.5) > 1e-9 {
		t.Errorf("metadata = %+v", ms)
	}
	if Metadata(&Corpus{}, 0).Structured != 0 {
		t.Error("empty corpus metadata should be zero")
	}
}

func TestUniqueness(t *testing.T) {
	us := Uniqueness(testCorpus())
	all := us["all"]
	// Excludes the all-null column: 5 columns counted.
	if all.Columns != 5 {
		t.Fatalf("all columns = %d, want 5", all.Columns)
	}
	num := us["number"]
	txt := us["text"]
	if num.Columns != 3 { // two id columns + w
		t.Errorf("number columns = %d", num.Columns)
	}
	if txt.Columns != 2 { // v and k
		t.Errorf("text columns = %d", txt.Columns)
	}
	if num.MaxUnique != 4 {
		t.Errorf("max unique = %d", num.MaxUnique)
	}
	if txt.AvgUniqueness >= num.AvgUniqueness {
		t.Errorf("text uniqueness (%.2f) should be below numeric (%.2f) here",
			txt.AvgUniqueness, num.AvgUniqueness)
	}
}

func TestIsNullValue(t *testing.T) {
	if !IsNullValue("n/a") || IsNullValue("x") {
		t.Error("IsNullValue wrong")
	}
}
