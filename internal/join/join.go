// Package join finds joinable table pairs the way the paper does
// (§5.1): two columns are joinable when the Jaccard similarity of
// their distinct value sets is at least 0.9 and both columns have at
// least 10 distinct values. The finder uses a prefix-filter inverted
// index (the AllPairs family of set-similarity joins) so the search is
// subquadratic on realistic corpora, and computes for every joinable
// pair the expansion ratio |T1 ⋈ T2| / max(|T1|, |T2|) analyzed in
// Figure 8.
package join

import (
	"sort"

	"ogdp/internal/table"
)

// Defaults from the paper.
const (
	// DefaultMinJaccard is the value-overlap threshold for joinability.
	DefaultMinJaccard = 0.9
	// DefaultMinUnique is the minimum distinct-value count for a column
	// to participate (filters boolean-like columns).
	DefaultMinUnique = 10
)

// Options configures Find.
type Options struct {
	// MinJaccard defaults to DefaultMinJaccard.
	MinJaccard float64
	// MinUnique defaults to DefaultMinUnique; negative disables the
	// filter.
	MinUnique int
}

func (o Options) withDefaults() Options {
	if o.MinJaccard == 0 {
		o.MinJaccard = DefaultMinJaccard
	}
	if o.MinUnique == 0 {
		o.MinUnique = DefaultMinUnique
	}
	return o
}

// Pair is one joinable quadruplet (T1, C1, T2, C2) with T1 < T2 as
// table indices into the analyzed corpus.
type Pair struct {
	T1, C1 int
	T2, C2 int
	// Jaccard is the exact Jaccard similarity of the distinct value
	// sets.
	Jaccard float64
	// Expansion is the paper's expansion ratio: the number of output
	// tuples of the equi-join divided by the row count of the larger
	// input table.
	Expansion float64
	// Key1 and Key2 report whether each join column is a key of its
	// table (uniqueness 1.0, no nulls).
	Key1, Key2 bool
}

// Analysis is the result of a joinability search over a corpus.
type Analysis struct {
	// Tables is the analyzed corpus (as passed to Find).
	Tables []*table.Table
	// Pairs are all joinable pairs found.
	Pairs []Pair
	// Eligible counts columns that passed the MinUnique filter.
	Eligible int
}

// column is one indexed column.
type column struct {
	tbl, col int
	hashes   []uint64 // sorted distinct value hashes (no nulls)
	isKey    bool
}

// Find runs the joinability analysis over the corpus.
func Find(tables []*table.Table, opts Options) *Analysis {
	opts = opts.withDefaults()
	a := &Analysis{Tables: tables}

	cols := collectColumns(tables, opts.MinUnique)
	a.Eligible = len(cols)
	if len(cols) < 2 {
		return a
	}

	// Prefix-filter candidate generation: for Jaccard >= θ two sets
	// must share a value among the first floor((1-θ)·|S|)+1 elements of
	// each sorted set. Index those prefixes, verify candidates exactly.
	type candKey struct{ i, j int }
	postings := make(map[uint64][]int)
	seen := make(map[candKey]struct{})

	for ci, c := range cols {
		prefixLen := int(float64(len(c.hashes))*(1-opts.MinJaccard)) + 1
		if prefixLen > len(c.hashes) {
			prefixLen = len(c.hashes)
		}
		for _, h := range c.hashes[:prefixLen] {
			for _, cj := range postings[h] {
				o := cols[cj]
				if o.tbl == c.tbl {
					continue
				}
				// Size filter: |A|/|B| must be within [θ, 1/θ].
				la, lb := len(c.hashes), len(o.hashes)
				if float64(min(la, lb)) < opts.MinJaccard*float64(max(la, lb)) {
					continue
				}
				key := candKey{cj, ci}
				if _, ok := seen[key]; ok {
					continue
				}
				seen[key] = struct{}{}
				if j, ok := jaccard(c.hashes, o.hashes, opts.MinJaccard); ok {
					a.Pairs = append(a.Pairs, makePair(tables, cols, cj, ci, j))
				}
			}
			postings[h] = append(postings[h], ci)
		}
	}

	sort.Slice(a.Pairs, func(i, j int) bool {
		p, q := a.Pairs[i], a.Pairs[j]
		if p.T1 != q.T1 {
			return p.T1 < q.T1
		}
		if p.C1 != q.C1 {
			return p.C1 < q.C1
		}
		if p.T2 != q.T2 {
			return p.T2 < q.T2
		}
		return p.C2 < q.C2
	})
	return a
}

// FindAllPairs is the brute-force baseline used by tests and the
// join-index ablation bench: it verifies every eligible column pair.
func FindAllPairs(tables []*table.Table, opts Options) *Analysis {
	opts = opts.withDefaults()
	a := &Analysis{Tables: tables}
	cols := collectColumns(tables, opts.MinUnique)
	a.Eligible = len(cols)
	for i := 0; i < len(cols); i++ {
		for j := i + 1; j < len(cols); j++ {
			if cols[i].tbl == cols[j].tbl {
				continue
			}
			if jv, ok := jaccard(cols[i].hashes, cols[j].hashes, opts.MinJaccard); ok {
				a.Pairs = append(a.Pairs, makePair(tables, cols, i, j, jv))
			}
		}
	}
	sort.Slice(a.Pairs, func(i, j int) bool {
		p, q := a.Pairs[i], a.Pairs[j]
		if p.T1 != q.T1 {
			return p.T1 < q.T1
		}
		if p.C1 != q.C1 {
			return p.C1 < q.C1
		}
		if p.T2 != q.T2 {
			return p.T2 < q.T2
		}
		return p.C2 < q.C2
	})
	return a
}

func makePair(tables []*table.Table, cols []column, i, j int, jv float64) Pair {
	a, b := cols[i], cols[j]
	if b.tbl < a.tbl || (b.tbl == a.tbl && b.col < a.col) {
		a, b = b, a
	}
	p := Pair{
		T1: a.tbl, C1: a.col,
		T2: b.tbl, C2: b.col,
		Jaccard: jv,
		Key1:    a.isKey, Key2: b.isKey,
	}
	p.Expansion = expansionRatio(tables[p.T1], p.C1, tables[p.T2], p.C2)
	return p
}

// collectColumns indexes every eligible column of the corpus.
func collectColumns(tables []*table.Table, minUnique int) []column {
	var out []column
	for ti, t := range tables {
		for ci := range t.Cols {
			p := t.Profile(ci)
			if minUnique > 0 && p.Distinct < minUnique {
				continue
			}
			if p.Distinct == 0 {
				continue
			}
			hashes := make([]uint64, 0, p.Distinct)
			for h := range p.Counts {
				hashes = append(hashes, h)
			}
			sort.Slice(hashes, func(i, j int) bool { return hashes[i] < hashes[j] })
			out = append(out, column{tbl: ti, col: ci, hashes: hashes, isKey: p.IsKey()})
		}
	}
	return out
}

// jaccard computes the exact Jaccard similarity of two sorted hash
// sets, returning ok=false as soon as the similarity provably falls
// below minJ.
func jaccard(a, b []uint64, minJ float64) (float64, bool) {
	la, lb := len(a), len(b)
	if la == 0 || lb == 0 {
		return 0, false
	}
	// Upper bound: min/max sizes.
	if float64(min(la, lb)) < minJ*float64(max(la, lb)) {
		return 0, false
	}
	inter := 0
	i, j := 0, 0
	remA, remB := la, lb
	for i < la && j < lb {
		// Early exit: even if everything remaining intersects, can we
		// still reach minJ?
		maxInter := inter + min(remA, remB)
		union := la + lb - maxInter
		if float64(maxInter) < minJ*float64(union) {
			return 0, false
		}
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
			remA--
			remB--
		case a[i] < b[j]:
			i++
			remA--
		default:
			j++
			remB--
		}
	}
	union := la + lb - inter
	jv := float64(inter) / float64(union)
	return jv, jv >= minJ
}

// expansionRatio computes |T1 ⋈_{c1=c2} T2| / max(|T1|, |T2|) from the
// columns' value-frequency maps: the join output size is
// Σ_v freq1(v)·freq2(v) over shared values (nulls never join).
func expansionRatio(t1 *table.Table, c1 int, t2 *table.Table, c2 int) float64 {
	p1 := t1.Profile(c1)
	p2 := t2.Profile(c2)
	small, large := p1.Counts, p2.Counts
	if len(large) < len(small) {
		small, large = large, small
	}
	var out int64
	for h, n := range small {
		if m, ok := large[h]; ok {
			out += int64(n) * int64(m)
		}
	}
	denom := t1.NumRows()
	if t2.NumRows() > denom {
		denom = t2.NumRows()
	}
	if denom == 0 {
		return 0
	}
	return float64(out) / float64(denom)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
