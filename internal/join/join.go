// Package join finds joinable table pairs the way the paper does
// (§5.1): two columns are joinable when the Jaccard similarity of
// their distinct value sets is at least 0.9 and both columns have at
// least 10 distinct values. The finder uses a prefix-filter inverted
// index (the AllPairs family of set-similarity joins) so the search is
// subquadratic on realistic corpora, and computes for every joinable
// pair the expansion ratio |T1 ⋈ T2| / max(|T1|, |T2|) analyzed in
// Figure 8.
package join

import (
	"context"
	"sort"

	"ogdp/internal/parallel"
	"ogdp/internal/stats"
	"ogdp/internal/table"
)

// Defaults from the paper.
const (
	// DefaultMinJaccard is the value-overlap threshold for joinability.
	DefaultMinJaccard = 0.9
	// DefaultMinUnique is the minimum distinct-value count for a column
	// to participate (filters boolean-like columns).
	DefaultMinUnique = 10
)

// Options configures Find.
type Options struct {
	// MinJaccard defaults to DefaultMinJaccard.
	MinJaccard float64
	// MinUnique defaults to DefaultMinUnique; negative disables the
	// filter.
	MinUnique int
	// Workers bounds the goroutines used for column collection and
	// candidate verification: 0 selects runtime.GOMAXPROCS(0), 1 runs
	// sequentially. The result is identical for every worker count.
	Workers int
}

func (o Options) withDefaults() Options {
	if stats.ApproxEq(o.MinJaccard, 0) {
		o.MinJaccard = DefaultMinJaccard
	}
	if o.MinUnique == 0 {
		o.MinUnique = DefaultMinUnique
	}
	return o
}

// Pair is one joinable quadruplet (T1, C1, T2, C2) with T1 < T2 as
// table indices into the analyzed corpus.
type Pair struct {
	T1, C1 int
	T2, C2 int
	// Jaccard is the exact Jaccard similarity of the distinct value
	// sets.
	Jaccard float64
	// Expansion is the paper's expansion ratio: the number of output
	// tuples of the equi-join divided by the row count of the larger
	// input table.
	Expansion float64
	// Key1 and Key2 report whether each join column is a key of its
	// table (uniqueness 1.0, no nulls).
	Key1, Key2 bool
}

// Analysis is the result of a joinability search over a corpus.
type Analysis struct {
	// Tables is the analyzed corpus (as passed to Find).
	Tables []*table.Table
	// Pairs are all joinable pairs found.
	Pairs []Pair
	// Eligible counts columns that passed the MinUnique filter.
	Eligible int
	// Candidates counts the column pairs the prefix filter surfaced
	// for exact verification — the search's cost driver, recorded so
	// the observability layer can report index selectivity. It is
	// generated sequentially, so the count is identical for every
	// worker count.
	Candidates int
}

// column is one indexed column.
type column struct {
	tbl, col int
	hashes   []uint64 // sorted distinct value hashes (no nulls)
	isKey    bool
}

// Find runs the joinability analysis over the corpus. The search is
// deterministic for every Options.Workers value: candidates are
// generated sequentially, verification results are index-addressed,
// and the pair list is sorted into a canonical order before returning.
func Find(tables []*table.Table, opts Options) *Analysis {
	opts = opts.withDefaults()
	a := &Analysis{Tables: tables}

	cols := collectColumns(tables, opts.MinUnique, opts.Workers)
	a.Eligible = len(cols)
	if len(cols) < 2 {
		return a
	}

	cands := candidatePairs(cols, opts.MinJaccard)
	a.Candidates = len(cands)

	// Exact verification dominates the search; shard it across workers.
	// Each candidate writes only its own result slot, so the surviving
	// pair set is independent of scheduling.
	type verdict struct {
		pair Pair
		ok   bool
	}
	verified := parallel.MustMap(parallel.Map(parallel.WithPool(context.Background(), "join-verify"),
		len(cands), opts.Workers, func(k int) verdict {
			c := cands[k]
			if jv, ok := jaccard(cols[c.i].hashes, cols[c.j].hashes, opts.MinJaccard); ok {
				return verdict{pair: makePair(tables, cols, c.j, c.i, jv), ok: true}
			}
			return verdict{}
		}))
	for _, v := range verified {
		if v.ok {
			a.Pairs = append(a.Pairs, v.pair)
		}
	}

	sortPairs(a.Pairs)
	return a
}

// cand is one candidate column pair: cols[j] was indexed before
// cols[i], matching the (cj, ci) order of the sequential scan.
type cand struct{ i, j int }

// candidatePairs runs prefix-filter candidate generation: for
// Jaccard >= θ two sets must share a value among the first
// floor((1-θ)·|S|)+1 elements of each sorted set. Index those
// prefixes; the caller verifies candidates exactly.
func candidatePairs(cols []column, minJaccard float64) []cand {
	prefixLens := make([]int, len(cols))
	totalPrefix := 0
	for i, c := range cols {
		pl := int(float64(len(c.hashes))*(1-minJaccard)) + 1
		if pl > len(c.hashes) {
			pl = len(c.hashes)
		}
		prefixLens[i] = pl
		totalPrefix += pl
	}

	// Each column posts each of its prefix hashes exactly once, so the
	// index never holds more than totalPrefix keys.
	postings := make(map[uint64][]int, totalPrefix)
	// stamp[cj] == ci records that (cj, ci) was already emitted while
	// scanning column ci. Candidates for ci are only generated during
	// ci's own scan, so this per-scan stamp replaces a global seen map;
	// a single-hash prefix cannot emit the same partner twice, so the
	// lookup is skipped entirely for prefixLen == 1.
	stamp := make([]int, len(cols))
	for i := range stamp {
		stamp[i] = -1
	}

	var cands []cand
	for ci, c := range cols {
		prefix := c.hashes[:prefixLens[ci]]
		dedup := len(prefix) > 1
		for _, h := range prefix {
			for _, cj := range postings[h] {
				o := cols[cj]
				if o.tbl == c.tbl {
					continue
				}
				// Size filter: |A|/|B| must be within [θ, 1/θ].
				la, lb := len(c.hashes), len(o.hashes)
				if float64(min(la, lb)) < minJaccard*float64(max(la, lb)) {
					continue
				}
				if dedup {
					if stamp[cj] == ci {
						continue
					}
					stamp[cj] = ci
				}
				cands = append(cands, cand{i: ci, j: cj})
			}
			postings[h] = append(postings[h], ci)
		}
	}
	return cands
}

// sortPairs orders pairs canonically by (T1, C1, T2, C2); the key is
// unique per column pair, so the order is total.
func sortPairs(pairs []Pair) {
	sort.Slice(pairs, func(i, j int) bool {
		p, q := pairs[i], pairs[j]
		if p.T1 != q.T1 {
			return p.T1 < q.T1
		}
		if p.C1 != q.C1 {
			return p.C1 < q.C1
		}
		if p.T2 != q.T2 {
			return p.T2 < q.T2
		}
		return p.C2 < q.C2
	})
}

// FindAllPairs is the brute-force baseline used by tests and the
// join-index ablation bench: it verifies every eligible column pair.
func FindAllPairs(tables []*table.Table, opts Options) *Analysis {
	opts = opts.withDefaults()
	a := &Analysis{Tables: tables}
	cols := collectColumns(tables, opts.MinUnique, 1)
	a.Eligible = len(cols)
	for i := 0; i < len(cols); i++ {
		for j := i + 1; j < len(cols); j++ {
			if cols[i].tbl == cols[j].tbl {
				continue
			}
			a.Candidates++
			if jv, ok := jaccard(cols[i].hashes, cols[j].hashes, opts.MinJaccard); ok {
				a.Pairs = append(a.Pairs, makePair(tables, cols, i, j, jv))
			}
		}
	}
	sortPairs(a.Pairs)
	return a
}

func makePair(tables []*table.Table, cols []column, i, j int, jv float64) Pair {
	a, b := cols[i], cols[j]
	if b.tbl < a.tbl || (b.tbl == a.tbl && b.col < a.col) {
		a, b = b, a
	}
	p := Pair{
		T1: a.tbl, C1: a.col,
		T2: b.tbl, C2: b.col,
		Jaccard: jv,
		Key1:    a.isKey, Key2: b.isKey,
	}
	p.Expansion = expansionRatio(tables[p.T1], p.C1, tables[p.T2], p.C2)
	return p
}

// collectColumns indexes every eligible column of the corpus, fanning
// out per table. Profiles are normally already published by core's
// precompute pass, making this a read-only, lock-free walk; any column
// profiled here is built exactly once under its column lock.
// Concatenating the per-table slices in table order keeps the column
// numbering identical to a sequential scan. The hash sets are the
// profiles' cached, already-sorted value-hash arrays, so collection
// allocates nothing per column beyond the index entries.
func collectColumns(tables []*table.Table, minUnique, workers int) []column {
	perTable := parallel.MustMap(parallel.Map(parallel.WithPool(context.Background(), "join-columns"),
		len(tables), workers, func(ti int) []column {
			t := tables[ti]
			var out []column
			for ci := range t.Cols {
				p := t.Profile(ci)
				if minUnique > 0 && p.Distinct < minUnique {
					continue
				}
				if p.Distinct == 0 {
					continue
				}
				out = append(out, column{tbl: ti, col: ci, hashes: p.ValueHashes(), isKey: p.IsKey()})
			}
			return out
		}))
	var out []column
	for _, cs := range perTable {
		out = append(out, cs...)
	}
	return out
}

// jaccard computes the exact Jaccard similarity of two sorted hash
// sets, returning ok=false as soon as the similarity provably falls
// below minJ.
func jaccard(a, b []uint64, minJ float64) (float64, bool) {
	la, lb := len(a), len(b)
	if la == 0 || lb == 0 {
		return 0, false
	}
	// Upper bound: min/max sizes.
	if float64(min(la, lb)) < minJ*float64(max(la, lb)) {
		return 0, false
	}
	inter := 0
	i, j := 0, 0
	remA, remB := la, lb
	for i < la && j < lb {
		// Early exit: even if everything remaining intersects, can we
		// still reach minJ?
		maxInter := inter + min(remA, remB)
		union := la + lb - maxInter
		if float64(maxInter) < minJ*float64(union) {
			return 0, false
		}
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
			remA--
			remB--
		case a[i] < b[j]:
			i++
			remA--
		default:
			j++
			remB--
		}
	}
	union := la + lb - inter
	jv := float64(inter) / float64(union)
	return jv, jv >= minJ
}

// expansionRatio computes |T1 ⋈_{c1=c2} T2| / max(|T1|, |T2|) from the
// columns' value-frequency sets: the join output size is
// Σ_v freq1(v)·freq2(v) over shared values (nulls never join),
// evaluated as a merge walk over the sorted hash arrays.
func expansionRatio(t1 *table.Table, c1 int, t2 *table.Table, c2 int) float64 {
	p1 := t1.Profile(c1)
	p2 := t2.Profile(c2)
	h1, n1 := p1.ValueHashes(), p1.ValueHashCounts()
	h2, n2 := p2.ValueHashes(), p2.ValueHashCounts()
	var out int64
	i, j := 0, 0
	for i < len(h1) && j < len(h2) {
		switch {
		case h1[i] == h2[j]:
			out += int64(n1[i]) * int64(n2[j])
			i++
			j++
		case h1[i] < h2[j]:
			i++
		default:
			j++
		}
	}
	denom := t1.NumRows()
	if t2.NumRows() > denom {
		denom = t2.NumRows()
	}
	if denom == 0 {
		return 0
	}
	return float64(out) / float64(denom)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
