package join

import (
	"fmt"
	"math/rand"
	"reflect"
	"strconv"
	"testing"

	"ogdp/internal/table"
)

// idTable builds a table with an id column 1..n and a payload column.
func idTable(name string, n int, payload string) *table.Table {
	t := table.New(name, []string{"id", payload})
	for i := 1; i <= n; i++ {
		t.AppendRow([]string{strconv.Itoa(i), fmt.Sprintf("%s-%d", payload, i)})
	}
	return t
}

func TestFindPerfectOverlap(t *testing.T) {
	t1 := idTable("a.csv", 50, "x")
	t2 := idTable("b.csv", 50, "y")
	an := Find([]*table.Table{t1, t2}, Options{})
	if len(an.Pairs) != 1 {
		t.Fatalf("pairs = %d, want 1", len(an.Pairs))
	}
	p := an.Pairs[0]
	if p.T1 != 0 || p.C1 != 0 || p.T2 != 1 || p.C2 != 0 {
		t.Errorf("pair = %+v", p)
	}
	if p.Jaccard != 1.0 {
		t.Errorf("jaccard = %g", p.Jaccard)
	}
	if !p.Key1 || !p.Key2 {
		t.Errorf("id columns must be keys: %+v", p)
	}
	if p.Expansion != 1.0 {
		t.Errorf("key-key expansion = %g, want 1", p.Expansion)
	}
}

func TestThresholdExcludesLowOverlap(t *testing.T) {
	t1 := idTable("a.csv", 50, "x")
	// 50..99 overlaps 1..50 in a single value (50): Jaccard ~ 0.01.
	t2 := table.New("b.csv", []string{"id", "y"})
	for i := 50; i < 100; i++ {
		t2.AppendRow([]string{strconv.Itoa(i), "v"})
	}
	an := Find([]*table.Table{t1, t2}, Options{})
	if len(an.Pairs) != 0 {
		t.Errorf("pairs = %v, want none", an.Pairs)
	}
	// With a tiny threshold the pair appears.
	an2 := Find([]*table.Table{t1, t2}, Options{MinJaccard: 0.005})
	if len(an2.Pairs) != 1 {
		t.Errorf("low threshold pairs = %d, want 1", len(an2.Pairs))
	}
}

func TestMinUniqueFilter(t *testing.T) {
	// Boolean-ish columns overlap perfectly but have 2 distinct values.
	t1 := table.New("a.csv", []string{"flag"})
	t2 := table.New("b.csv", []string{"flag"})
	for i := 0; i < 40; i++ {
		v := strconv.Itoa(i % 2)
		t1.AppendRow([]string{v})
		t2.AppendRow([]string{v})
	}
	an := Find([]*table.Table{t1, t2}, Options{})
	if len(an.Pairs) != 0 || an.Eligible != 0 {
		t.Errorf("boolean columns must be filtered: pairs=%d eligible=%d", len(an.Pairs), an.Eligible)
	}
	an2 := Find([]*table.Table{t1, t2}, Options{MinUnique: -1})
	if len(an2.Pairs) != 1 {
		t.Errorf("disabled filter: pairs = %d, want 1", len(an2.Pairs))
	}
}

func TestSameTableColumnsNotPaired(t *testing.T) {
	tb := table.New("a.csv", []string{"x", "y"})
	for i := 1; i <= 30; i++ {
		v := strconv.Itoa(i)
		tb.AppendRow([]string{v, v})
	}
	an := Find([]*table.Table{tb}, Options{})
	if len(an.Pairs) != 0 {
		t.Errorf("intra-table pair reported: %v", an.Pairs)
	}
}

func TestExpansionRatioNonKey(t *testing.T) {
	// Each value appears 3 times in t1 and 2 times in t2 over 10 values:
	// join output = 10·3·2 = 60; larger table has 30 rows; expansion 2.
	t1 := table.New("a.csv", []string{"v"})
	t2 := table.New("b.csv", []string{"v"})
	for val := 0; val < 10; val++ {
		for k := 0; k < 3; k++ {
			t1.AppendRow([]string{strconv.Itoa(val)})
		}
		for k := 0; k < 2; k++ {
			t2.AppendRow([]string{strconv.Itoa(val)})
		}
	}
	an := Find([]*table.Table{t1, t2}, Options{})
	if len(an.Pairs) != 1 {
		t.Fatalf("pairs = %d", len(an.Pairs))
	}
	p := an.Pairs[0]
	if p.Expansion != 2.0 {
		t.Errorf("expansion = %g, want 2", p.Expansion)
	}
	if p.Key1 || p.Key2 {
		t.Error("repeating columns must not be keys")
	}
}

func TestJaccardExact(t *testing.T) {
	// 9 shared of 10 each: J = 9/11 ≈ 0.818.
	t1 := table.New("a.csv", []string{"v"})
	t2 := table.New("b.csv", []string{"v"})
	for i := 0; i < 10; i++ {
		t1.AppendRow([]string{fmt.Sprintf("v%02d", i)})
		t2.AppendRow([]string{fmt.Sprintf("v%02d", i+1)})
	}
	an := Find([]*table.Table{t1, t2}, Options{MinJaccard: 0.8})
	if len(an.Pairs) != 1 {
		t.Fatalf("pairs = %d", len(an.Pairs))
	}
	want := 9.0 / 11.0
	if got := an.Pairs[0].Jaccard; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("jaccard = %g, want %g", got, want)
	}
	// Above the exact value, the pair disappears.
	an2 := Find([]*table.Table{t1, t2}, Options{MinJaccard: 0.82})
	if len(an2.Pairs) != 0 {
		t.Errorf("threshold 0.82 should exclude J=0.818 pair")
	}
}

func TestNullsExcludedFromOverlap(t *testing.T) {
	// Shared values + many nulls on both sides: nulls must not join or
	// count toward the value sets.
	t1 := table.New("a.csv", []string{"v"})
	t2 := table.New("b.csv", []string{"v"})
	for i := 0; i < 15; i++ {
		t1.AppendRow([]string{strconv.Itoa(i)})
		t2.AppendRow([]string{strconv.Itoa(i)})
	}
	for i := 0; i < 10; i++ {
		t1.AppendRow([]string{""})
		t2.AppendRow([]string{"n/a"})
	}
	an := Find([]*table.Table{t1, t2}, Options{})
	if len(an.Pairs) != 1 {
		t.Fatalf("pairs = %d", len(an.Pairs))
	}
	p := an.Pairs[0]
	if p.Jaccard != 1.0 {
		t.Errorf("jaccard with nulls = %g, want 1 (nulls excluded)", p.Jaccard)
	}
	// Join output = 15 matches; larger table 25 rows; expansion 0.6.
	if p.Expansion != 0.6 {
		t.Errorf("expansion = %g, want 0.6", p.Expansion)
	}
}

// TestPrefixFilterAgainstAllPairs cross-validates the indexed finder
// against brute force on random corpora.
func TestPrefixFilterAgainstAllPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 15; trial++ {
		var tables []*table.Table
		nTables := 3 + rng.Intn(5)
		for ti := 0; ti < nTables; ti++ {
			nCols := 1 + rng.Intn(3)
			cols := make([]string, nCols)
			for c := range cols {
				cols[c] = fmt.Sprintf("c%d", c)
			}
			tb := table.New(fmt.Sprintf("t%d", ti), cols)
			nRows := 10 + rng.Intn(60)
			base := rng.Intn(3) * 2 // overlapping value ranges across tables
			for r := 0; r < nRows; r++ {
				row := make([]string, nCols)
				for c := range row {
					row[c] = strconv.Itoa(base + rng.Intn(25))
				}
				tb.AppendRow(row)
			}
			tables = append(tables, tb)
		}
		for _, minJ := range []float64{0.9, 0.7, 0.5} {
			got := Find(tables, Options{MinJaccard: minJ})
			want := FindAllPairs(tables, Options{MinJaccard: minJ})
			if !reflect.DeepEqual(got.Pairs, want.Pairs) {
				t.Fatalf("trial %d θ=%g: indexed %d pairs, brute force %d pairs\n%v\n%v",
					trial, minJ, len(got.Pairs), len(want.Pairs), got.Pairs, want.Pairs)
			}
		}
	}
}

func TestEmptyCorpus(t *testing.T) {
	if an := Find(nil, Options{}); len(an.Pairs) != 0 {
		t.Error("empty corpus produced pairs")
	}
	one := idTable("only.csv", 20, "x")
	if an := Find([]*table.Table{one}, Options{}); len(an.Pairs) != 0 {
		t.Error("single table produced pairs")
	}
}

func buildBenchCorpus(nTables, nRows int, seed int64) []*table.Table {
	rng := rand.New(rand.NewSource(seed))
	var tables []*table.Table
	for ti := 0; ti < nTables; ti++ {
		tb := table.New(fmt.Sprintf("t%d", ti), []string{"id", "state", "value"})
		for r := 0; r < nRows; r++ {
			tb.AppendRow([]string{
				strconv.Itoa(r + 1),
				fmt.Sprintf("state-%d", rng.Intn(50)),
				strconv.Itoa(rng.Intn(100000)),
			})
		}
		tables = append(tables, tb)
	}
	return tables
}

func BenchmarkFindIndexed(b *testing.B) {
	tables := buildBenchCorpus(50, 500, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Find(tables, Options{})
	}
}

func BenchmarkFindAllPairs(b *testing.B) {
	tables := buildBenchCorpus(50, 500, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FindAllPairs(tables, Options{})
	}
}
