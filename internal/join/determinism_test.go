// External test package: gen depends on join, so this test must live
// outside package join to import the corpus generator.
package join_test

import (
	"reflect"
	"testing"

	"ogdp/internal/gen"
	"ogdp/internal/join"
	"ogdp/internal/table"
)

// TestFindDeterministicAcrossWorkers requires byte-identical analyses
// for every worker count over a mixed SG+US corpus.
func TestFindDeterministicAcrossWorkers(t *testing.T) {
	var tables []*table.Table
	for i, p := range []gen.PortalProfile{gen.SG(), gen.US()} {
		tables = append(tables, gen.Generate(p, 0.05, int64(7+i)).Tables()...)
	}

	seq := join.Find(tables, join.Options{Workers: 1})
	if len(seq.Pairs) == 0 {
		t.Fatal("no pairs found; determinism comparison is vacuous")
	}
	for _, workers := range []int{2, 8} {
		par := join.Find(tables, join.Options{Workers: workers})
		if par.Eligible != seq.Eligible {
			t.Errorf("Workers=%d: eligible %d != %d", workers, par.Eligible, seq.Eligible)
		}
		if !reflect.DeepEqual(par.Pairs, seq.Pairs) {
			t.Errorf("Workers=%d: %d pairs differ from sequential %d",
				workers, len(par.Pairs), len(seq.Pairs))
		}
	}
}

// TestFindMatchesAllPairsBaseline cross-checks the parallel
// prefix-filter search against the brute-force baseline.
func TestFindMatchesAllPairsBaseline(t *testing.T) {
	tables := gen.Generate(gen.SG(), 0.05, 9).Tables()
	fast := join.Find(tables, join.Options{Workers: 4})
	slow := join.FindAllPairs(tables, join.Options{})
	if !reflect.DeepEqual(fast.Pairs, slow.Pairs) {
		t.Fatalf("prefix-filter (%d pairs) != all-pairs baseline (%d pairs)",
			len(fast.Pairs), len(slow.Pairs))
	}
}
