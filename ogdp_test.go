package ogdp

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadCSVAndProfile(t *testing.T) {
	in := "id,city,province\n1,Waterloo,ON\n2,Toronto,ON\n3,Montreal,QC\n"
	tb, err := ReadCSV("cities.csv", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 3 || tb.NumCols() != 3 {
		t.Fatalf("shape = %d×%d", tb.NumCols(), tb.NumRows())
	}
	ks := KeyColumns(tb)
	if len(ks) == 0 || ks[0] != 0 {
		t.Errorf("KeyColumns = %v", ks)
	}
	if MinCandidateKeySize(tb) != 1 {
		t.Errorf("MinCandidateKeySize = %d", MinCandidateKeySize(tb))
	}
}

func TestFDAndBCNFFacade(t *testing.T) {
	in := "id,city,province\n1,Waterloo,ON\n2,Toronto,ON\n3,Montreal,QC\n4,Waterloo,ON\n"
	tb, err := ReadCSV("cities.csv", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !HasNontrivialFD(tb) {
		t.Fatal("city -> province FD not detected")
	}
	fds := DiscoverFDs(tb)
	if len(fds) == 0 {
		t.Fatal("no FDs discovered")
	}
	res := DecomposeBCNF(tb, 1)
	if res.InBCNF() || len(res.Tables) < 2 {
		t.Errorf("decomposition = %d tables", len(res.Tables))
	}
}

func TestJoinUnionFacade(t *testing.T) {
	mk := func(name string) *Table {
		var b strings.Builder
		b.WriteString("id,value\n")
		for i := 1; i <= 30; i++ {
			b.WriteString(strings.Repeat(" ", 0))
			b.WriteString(strings.TrimSpace(strings.Join([]string{itoa(i), "1.5"}, ",")))
			b.WriteString("\n")
		}
		tb, err := ReadCSV(name, strings.NewReader(b.String()))
		if err != nil {
			t.Fatal(err)
		}
		return tb
	}
	t1, t2 := mk("a.csv"), mk("b.csv")
	ja := FindJoinable([]*Table{t1, t2}, JoinOptions{})
	if len(ja.Pairs) != 1 {
		t.Errorf("joinable pairs = %d", len(ja.Pairs))
	}
	ua := FindUnionable([]*Table{t1, t2})
	if ua.UnionableTables() != 2 {
		t.Errorf("unionable tables = %d", ua.UnionableTables())
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}

func TestGenerateCorpusFacade(t *testing.T) {
	p, ok := Portal("SG")
	if !ok {
		t.Fatal("SG profile missing")
	}
	c := GenerateCorpus(p, 0.05, 9)
	if len(c.Metas) == 0 {
		t.Fatal("empty corpus")
	}
	if len(Portals()) != 4 {
		t.Error("Portals() should return four profiles")
	}
	if _, ok := Portal("XX"); ok {
		t.Error("unknown portal should not resolve")
	}
}

func TestWriteCSVRoundTrip(t *testing.T) {
	in := "a,b\n1,x\n2,y\n"
	tb, err := ReadCSV("t.csv", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tb); err != nil {
		t.Fatal(err)
	}
	if buf.String() != in {
		t.Errorf("round trip = %q", buf.String())
	}
}

// TestReportBytesIdenticalAcrossWorkers renders the full paper report
// from a sequential and a heavily oversubscribed study run; the bytes
// must match exactly. This drives the whole pipeline through the
// public facade — including the per-column precompute fan-out, the
// fused keys+FD pass, and the lock-free table caches — so any
// scheduling dependence anywhere in the study surfaces as a diff here.
func TestReportBytesIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("study run")
	}
	render := func(workers int) string {
		res := RunStudy(StudyOptions{
			Scale: 0.04, Seed: 3, Workers: workers,
			MaxFDTables: 10, SamplePerCell: 2, UnionSamples: 4,
		})
		var buf bytes.Buffer
		WriteReport(&buf, res)
		return buf.String()
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		i := 0
		for i < len(seq) && i < len(par) && seq[i] == par[i] {
			i++
		}
		lo := i - 60
		if lo < 0 {
			lo = 0
		}
		t.Fatalf("report bytes differ between Workers=1 and Workers=8 at offset %d:\nseq: …%q\npar: …%q",
			i, seq[lo:min(i+60, len(seq))], par[lo:min(i+60, len(par))])
	}
}

func TestRunStudyAndReport(t *testing.T) {
	if testing.Short() {
		t.Skip("study run")
	}
	res := RunStudy(StudyOptions{Scale: 0.05, Seed: 2, MaxFDTables: 10, SamplePerCell: 2, UnionSamples: 4})
	if len(res.Portals) != 4 {
		t.Fatalf("portals = %d", len(res.Portals))
	}
	var buf bytes.Buffer
	WriteReport(&buf, res)
	if !strings.Contains(buf.String(), "Table 11") {
		t.Error("report incomplete")
	}
}
