package ogdp

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus ablations of the design choices called out in
// DESIGN.md. Each benchmark measures the analysis that produces its
// experiment and reports the experiment's headline number as a custom
// metric, so `go test -bench=. -benchmem` regenerates the whole
// evaluation.

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"

	"ogdp/internal/classify"
	"ogdp/internal/core"
	"ogdp/internal/csvio"
	"ogdp/internal/dict"
	"ogdp/internal/fd"
	"ogdp/internal/gen"
	"ogdp/internal/join"
	"ogdp/internal/keys"
	"ogdp/internal/minhash"
	"ogdp/internal/normalize"
	"ogdp/internal/profile"
	"ogdp/internal/rank"
	"ogdp/internal/report"
	"ogdp/internal/search"
	"ogdp/internal/stats"
	"ogdp/internal/table"
	"ogdp/internal/union"
)

// benchScale keeps the full -bench=. run tractable while preserving
// every portal's shape.
const benchScale = 0.15

var (
	corporaOnce sync.Once
	corpora     []*gen.Corpus

	studyOnce sync.Once
	studyRes  *core.StudyResult
)

func benchCorpora() []*gen.Corpus {
	corporaOnce.Do(func() {
		for i, p := range gen.Profiles() {
			corpora = append(corpora, gen.Generate(p, benchScale, int64(100+i)))
		}
	})
	return corpora
}

func benchStudy() *core.StudyResult {
	studyOnce.Do(func() {
		studyRes = core.Run(gen.Profiles(), core.Options{
			Scale: benchScale, Seed: 100, Compress: true, FetchFunnel: true,
			MaxFDTables: 150,
		})
	})
	return studyRes
}

func profileCorpus(c *gen.Corpus) *profile.Corpus {
	pc := &profile.Corpus{Portal: c.PortalName}
	for _, m := range c.Metas {
		pc.Tables = append(pc.Tables, profile.TableInfo{
			Table: m.Table, DatasetID: m.Dataset, Published: m.Published,
			RawSize: m.RawSize,
		})
	}
	return pc
}

// ---- Table 1 / Figures 1-2 ----

func BenchmarkTable1PortalSizes(b *testing.B) {
	cs := benchCorpora()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range cs {
			profile.Sizes(profileCorpus(c), false)
		}
	}
	b.StopTimer()
	ps := profile.Sizes(profileCorpus(cs[3]), true)
	b.ReportMetric(float64(ps.TotalBytes)/(1<<20), "US-MiB")
	b.ReportMetric(float64(ps.TotalBytes)/float64(ps.CompressedBytes), "US-compression-x")
}

func BenchmarkFigure1SizePercentiles(b *testing.B) {
	cs := benchCorpora()
	steps := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range cs {
			profile.SizePercentiles(profileCorpus(c), steps)
		}
	}
	b.StopTimer()
	pts := profile.SizePercentiles(profileCorpus(cs[3]), steps)
	top := float64(pts[9].Cumulative-pts[8].Cumulative) / float64(pts[9].Cumulative)
	b.ReportMetric(top*100, "US-top-decile-%")
}

func BenchmarkFigure2UKGrowth(b *testing.B) {
	uk := benchCorpora()[2]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		profile.Growth(profileCorpus(uk))
	}
	b.StopTimer()
	g := profile.Growth(profileCorpus(uk))
	b.ReportMetric(float64(len(g)), "years")
}

// ---- Table 2 / Figure 3 ----

func BenchmarkTable2TableSizes(b *testing.B) {
	cs := benchCorpora()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range cs {
			profile.TableSizes(profileCorpus(c))
		}
	}
	b.StopTimer()
	st := profile.TableSizes(profileCorpus(cs[3]))
	b.ReportMetric(st.MedianRows, "US-median-rows")
}

func BenchmarkFigure3SizeDistributions(b *testing.B) {
	cs := benchCorpora()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range cs {
			var rows []float64
			for _, m := range c.Metas {
				rows = append(rows, float64(m.Table.NumRows()))
			}
			stats.Histogram(rows, []float64{0, 10, 100, 1000, 10000, 1e9})
		}
	}
}

// ---- Figure 4 / Table 3 ----

func BenchmarkFigure4NullRatios(b *testing.B) {
	cs := benchCorpora()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range cs {
			profile.Nulls(profileCorpus(c))
		}
	}
	b.StopTimer()
	ns := profile.Nulls(profileCorpus(cs[1]))
	b.ReportMetric(ns.FracColsWithNulls*100, "CA-null-cols-%")
}

func BenchmarkTable3Metadata(b *testing.B) {
	res := benchStudy()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range res.Portals {
			_ = p.Metadata
		}
		report.Table3(io.Discard, res)
	}
	b.StopTimer()
	b.ReportMetric(res.Portals[0].Metadata.Structured*100, "SG-structured-%")
}

// ---- Figure 5 / Table 4 ----

func BenchmarkFigure5Uniqueness(b *testing.B) {
	cs := benchCorpora()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		profile.Uniqueness(profileCorpus(cs[3]))
	}
	b.StopTimer()
	us := profile.Uniqueness(profileCorpus(cs[3]))
	b.ReportMetric(us["all"].MedianUnique, "US-median-uniques")
}

func BenchmarkTable4UniquenessByType(b *testing.B) {
	cs := benchCorpora()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range cs {
			profile.Uniqueness(profileCorpus(c))
		}
	}
	b.StopTimer()
	us := profile.Uniqueness(profileCorpus(cs[3]))
	b.ReportMetric(us["text"].MedianUnique, "US-text-median")
	b.ReportMetric(us["number"].MedianUnique, "US-number-median")
}

// ---- Figure 6 / Table 5 / Figure 7 ----

func fdSubset(c *gen.Corpus, max int) []*table.Table {
	var out []*table.Table
	for _, m := range c.Metas {
		t := m.Table
		if t.NumRows() < 10 || t.NumRows() > 10000 || t.NumCols() < 5 || t.NumCols() > 20 {
			continue
		}
		out = append(out, t)
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out
}

func BenchmarkFigure6CandidateKeys(b *testing.B) {
	sub := fdSubset(benchCorpora()[1], 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		keys.SizeDistribution(sub, keys.MaxCandidateKeySize)
	}
	b.StopTimer()
	dist := keys.SizeDistribution(sub, keys.MaxCandidateKeySize)
	total := 0
	for _, n := range dist {
		total += n
	}
	b.ReportMetric(float64(total-dist[1])/float64(total)*100, "CA-no-single-key-%")
}

func BenchmarkTable5FDStats(b *testing.B) {
	sub := fdSubset(benchCorpora()[1], 40)
	b.ResetTimer()
	withFD := 0
	for i := 0; i < b.N; i++ {
		withFD = 0
		for _, t := range sub {
			if fd.HasNontrivialFD(t, fd.MaxLHS) {
				withFD++
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(withFD)/float64(len(sub))*100, "CA-with-FD-%")
}

func BenchmarkFigure7Decomposition(b *testing.B) {
	sub := fdSubset(benchCorpora()[1], 25)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	var avg float64
	for i := 0; i < b.N; i++ {
		total, n := 0, 0
		for _, t := range sub {
			res := normalize.Decompose(t, fd.MaxLHS, rng)
			if !res.InBCNF() {
				total += len(res.Tables)
				n++
			}
		}
		if n > 0 {
			avg = float64(total) / float64(n)
		}
	}
	b.StopTimer()
	b.ReportMetric(avg, "CA-avg-subtables")
}

// ---- Table 6 / Figure 8 ----

func BenchmarkTable6Joinability(b *testing.B) {
	cs := benchCorpora()
	b.ResetTimer()
	var pairs int
	for i := 0; i < b.N; i++ {
		pairs = 0
		for _, c := range cs {
			pairs += len(join.Find(c.Tables(), join.Options{}).Pairs)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(pairs), "total-pairs")
}

func BenchmarkFigure8ExpansionRatios(b *testing.B) {
	us := benchCorpora()[3]
	ja := join.Find(us.Tables(), join.Options{})
	var exps []float64
	for _, p := range ja.Pairs {
		exps = append(exps, p.Expansion)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.LetterValueSummary(exps, 5)
	}
	b.StopTimer()
	b.ReportMetric(stats.Median(exps), "US-median-expansion")
}

// ---- Tables 7-10 ----

func labelSamples(b *testing.B, c *gen.Corpus) []classify.SampledPair {
	b.Helper()
	ja := join.Find(c.Tables(), join.Options{})
	return classify.SampleJoinPairs(c.Tables(), ja.Pairs, gen.Truth(c),
		classify.SampleOptions{PerCell: 17}, rand.New(rand.NewSource(9)))
}

func BenchmarkTable7Labels(b *testing.B) {
	ca := benchCorpora()[1]
	samples := labelSamples(b, ca)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		classify.Overall(samples)
	}
	b.StopTimer()
	b.ReportMetric(classify.Overall(samples).Accidental()*100, "CA-accidental-%")
}

func BenchmarkTable8InterIntra(b *testing.B) {
	ca := benchCorpora()[1]
	samples := labelSamples(b, ca)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		classify.ByDatasetLocality(samples)
	}
	b.StopTimer()
	loc := classify.ByDatasetLocality(samples)
	b.ReportMetric(loc[1].Useful*100, "CA-intra-useful-%")
	b.ReportMetric(loc[0].Useful*100, "CA-inter-useful-%")
}

func BenchmarkTable9KeyCombos(b *testing.B) {
	uk := benchCorpora()[2]
	samples := labelSamples(b, uk)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		classify.ByKeyCombo(samples)
	}
	b.StopTimer()
	combos := classify.ByKeyCombo(samples)
	b.ReportMetric(combos[0].Useful*100, "UK-keykey-useful-%")
	b.ReportMetric(combos[2].Useful*100, "UK-nonkey-useful-%")
}

func BenchmarkTable10DataTypes(b *testing.B) {
	us := benchCorpora()[3]
	samples := labelSamples(b, us)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		classify.ByTypeGroup(samples)
	}
	b.StopTimer()
	for _, d := range classify.ByTypeGroup(samples) {
		if d.Group == "incremental integer" && d.N > 0 {
			b.ReportMetric(d.Useful*100, "US-incint-useful-%")
		}
	}
}

// ---- Table 11 / §6 ----

func BenchmarkTable11Unionability(b *testing.B) {
	cs := benchCorpora()
	b.ResetTimer()
	var unionable int
	for i := 0; i < b.N; i++ {
		unionable = 0
		for _, c := range cs {
			unionable += union.Find(c.Tables()).UnionableTables()
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(unionable), "unionable-tables")
}

func BenchmarkUnionLabels(b *testing.B) {
	us := benchCorpora()[3]
	ua := union.Find(us.Tables())
	oracle := gen.Truth(us)
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	var dist classify.LabelDist
	for i := 0; i < b.N; i++ {
		samples := classify.SampleUnionPairs(ua, oracle, 25, rng)
		dist = classify.UnionLabelDist(samples)
	}
	b.StopTimer()
	b.ReportMetric(dist.Useful*100, "US-union-useful-%")
}

// ---- Ablations (DESIGN.md §6) ----

func BenchmarkAblationFDAlgorithms(b *testing.B) {
	sub := fdSubset(benchCorpora()[1], 15)
	b.Run("FUN", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, t := range sub {
				fd.Discover(t, fd.MaxLHS)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, t := range sub {
				fd.DiscoverNaive(t, fd.MaxLHS)
			}
		}
	})
	b.Run("tane", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, t := range sub {
				fd.DiscoverTANE(t, fd.MaxLHS)
			}
		}
	})
}

func BenchmarkAblationJaccardThreshold(b *testing.B) {
	ca := benchCorpora()[1]
	tables := ca.Tables()
	for _, theta := range []float64{0.9, 0.7} {
		theta := theta
		name := "theta-0.9"
		if theta == 0.7 {
			name = "theta-0.7"
		}
		b.Run(name, func(b *testing.B) {
			var pairs int
			for i := 0; i < b.N; i++ {
				pairs = len(join.Find(tables, join.Options{MinJaccard: theta}).Pairs)
			}
			b.ReportMetric(float64(pairs), "pairs")
		})
	}
}

func BenchmarkAblationMinUniques(b *testing.B) {
	ca := benchCorpora()[1]
	tables := ca.Tables()
	for _, mu := range []int{10, -1} {
		mu := mu
		name := "min-uniques-10"
		if mu < 0 {
			name = "min-uniques-off"
		}
		b.Run(name, func(b *testing.B) {
			var pairs int
			for i := 0; i < b.N; i++ {
				pairs = len(join.Find(tables, join.Options{MinUnique: mu}).Pairs)
			}
			b.ReportMetric(float64(pairs), "pairs")
		})
	}
}

func BenchmarkAblationHeaderScan(b *testing.B) {
	// A preamble-heavy CSV (80 annotation rows, as in real statistical
	// releases): shallow scans miss the header.
	var sb strings.Builder
	for i := 0; i < 80; i++ {
		sb.WriteString("Annual Report notes,,\n")
	}
	sb.WriteString("id,name,value\n")
	for i := 0; i < 2000; i++ {
		sb.WriteString("1,x,2\n")
	}
	data := sb.String()
	for _, depth := range []int{500, 50} {
		depth := depth
		name := "scan-500"
		if depth == 50 {
			name = "scan-50"
		}
		b.Run(name, func(b *testing.B) {
			ok := 0
			for i := 0; i < b.N; i++ {
				if _, err := csvio.ReadWith("t.csv", strings.NewReader(data), csvio.Options{HeaderScanRows: depth}); err == nil {
					ok++
				}
			}
			b.ReportMetric(float64(ok)/float64(b.N), "parse-ok")
		})
	}
}

func BenchmarkAblationJoinIndex(b *testing.B) {
	sg := benchCorpora()[0]
	tables := sg.Tables()
	b.Run("prefix-index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			join.Find(tables, join.Options{})
		}
	})
	b.Run("all-pairs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			join.FindAllPairs(tables, join.Options{})
		}
	})
}

// ---- Extensions ----

func BenchmarkExtensionRankJoins(b *testing.B) {
	ca := benchCorpora()[1]
	tables := ca.Tables()
	pairs := join.Find(tables, join.Options{}).Pairs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rank.RankJoins(tables, pairs, rank.JoinWeights{})
	}
	b.StopTimer()
	b.ReportMetric(float64(len(pairs)), "pairs-ranked")
}

func BenchmarkExtensionDictExtract(b *testing.B) {
	ca := benchCorpora()[1]
	var docs []string
	for _, ds := range ca.Datasets {
		if doc, ok := gen.MetadataDoc(ca, ds.ID, 77); ok {
			docs = append(docs, doc)
		}
	}
	if len(docs) == 0 {
		b.Skip("no documented datasets")
	}
	b.ResetTimer()
	entries := 0
	for i := 0; i < b.N; i++ {
		entries = len(dict.Extract(docs[i%len(docs)]).Entries)
	}
	b.StopTimer()
	b.ReportMetric(float64(entries), "entries")
}

func BenchmarkExtensionApproximateFDs(b *testing.B) {
	sub := fdSubset(benchCorpora()[1], 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, t := range sub {
			fd.DiscoverApproximate(t, 2, 0.02)
		}
	}
}

func BenchmarkExtensionTopKSearch(b *testing.B) {
	us := benchCorpora()[3]
	tables := us.Tables()
	eng := search.New(tables, search.MinUniqueDefault)
	q := tables[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.TopKJoinable(q, 0, 10, 0)
	}
	b.StopTimer()
	b.ReportMetric(float64(eng.NumIndexed()), "indexed-columns")
}

// BenchmarkAblationExactVsLSH compares exact prefix-filter joinability
// search against MinHash/LSH approximation on the same corpus,
// reporting the approximation's pair recall.
func BenchmarkAblationExactVsLSH(b *testing.B) {
	ca := benchCorpora()[1]
	tables := ca.Tables()
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			join.Find(tables, join.Options{})
		}
	})
	b.Run("lsh", func(b *testing.B) {
		type ref struct{ t, c int }
		for i := 0; i < b.N; i++ {
			ix := minhash.NewIndex(16, 8)
			var refs []ref
			for ti, t := range tables {
				for ci := range t.Cols {
					p := t.Profile(ci)
					if p.Distinct < join.DefaultMinUnique {
						continue
					}
					ix.Add(minhash.Sketch(p.ValueHashes(), 128))
					refs = append(refs, ref{ti, ci})
				}
			}
			ix.AllPairs(0.85)
		}
	})
	// Recall of the approximation, reported on a dedicated sub-bench
	// (metrics attached to a parent with only sub-runs are dropped).
	b.Run("recall", func(b *testing.B) {
		var recall float64
		for i := 0; i < b.N; i++ {
			exact := join.Find(tables, join.Options{}).Pairs
			type ref struct{ t, c int }
			ix := minhash.NewIndex(16, 8)
			var refs []ref
			for ti, t := range tables {
				for ci := range t.Cols {
					p := t.Profile(ci)
					if p.Distinct < join.DefaultMinUnique {
						continue
					}
					ix.Add(minhash.Sketch(p.ValueHashes(), 128))
					refs = append(refs, ref{ti, ci})
				}
			}
			approx := map[[4]int]bool{}
			for _, p := range ix.AllPairs(0.85) {
				a, bb := refs[p[0]], refs[p[1]]
				k := [4]int{a.t, a.c, bb.t, bb.c}
				if k[2] < k[0] || (k[2] == k[0] && k[3] < k[1]) {
					k = [4]int{k[2], k[3], k[0], k[1]}
				}
				approx[k] = true
			}
			hit := 0
			for _, p := range exact {
				if approx[[4]int{p.T1, p.C1, p.T2, p.C2}] {
					hit++
				}
			}
			if len(exact) > 0 {
				recall = 100 * float64(hit) / float64(len(exact))
			}
		}
		b.ReportMetric(recall, "lsh-recall-%")
	})
}

func BenchmarkExtension3NFSynthesis(b *testing.B) {
	sub := fdSubset(benchCorpora()[1], 15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, t := range sub {
			normalize.Synthesize3NF(t, fd.MaxLHS)
		}
	}
}

// BenchmarkAblationExactVsFuzzyUnion contrasts the paper's exact
// schema identity with the relaxed name-similarity matching of the
// cited systems, reporting how many additional tables the relaxation
// connects.
func BenchmarkAblationExactVsFuzzyUnion(b *testing.B) {
	ca := benchCorpora()[1]
	tables := ca.Tables()
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			union.Find(tables)
		}
	})
	b.Run("fuzzy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			union.FindFuzzy(tables, union.FuzzyOptions{})
		}
	})
	b.Run("gain", func(b *testing.B) {
		var exact, fuzzy int
		for i := 0; i < b.N; i++ {
			exact = union.Find(tables).UnionableTables()
			inFuzzy := map[int]bool{}
			for _, p := range union.FindFuzzy(tables, union.FuzzyOptions{}) {
				inFuzzy[p.T1] = true
				inFuzzy[p.T2] = true
			}
			fuzzy = len(inFuzzy)
		}
		b.ReportMetric(float64(exact), "exact-unionable")
		b.ReportMetric(float64(fuzzy), "fuzzy-unionable")
	})
}

// ---- End-to-end ----

// BenchmarkStudyParallel measures the full four-portal study at the
// harness default scale across worker counts. workers-1 is the
// sequential baseline that the speedups recorded in EXPERIMENTS.md
// are quoted against; every variant produces byte-identical results
// (see TestStudyDeterministicAcrossWorkers). The dedicated scaling
// harness with the CI-enforced threshold is cmd/ogdpscaling
// (BENCH_scaling.json holds its reference numbers).
func BenchmarkStudyParallel(b *testing.B) {
	counts := []int{1, 2, 4, 8}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 2 && p != 4 && p != 8 {
		counts = append(counts, p)
	}
	for _, w := range counts {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.Run(gen.Profiles(), core.Options{
					Scale: benchScale, Seed: 100, MaxFDTables: 150,
					SamplePerCell: 8, UnionSamples: 10, Workers: w,
				})
			}
		})
	}
}

func BenchmarkFullStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		core.Run(gen.Profiles(), core.Options{
			Scale: 0.05, Seed: int64(i + 1), MaxFDTables: 20,
			SamplePerCell: 3, UnionSamples: 5,
		})
	}
}

func BenchmarkReportRendering(b *testing.B) {
	res := benchStudy()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report.All(io.Discard, res)
	}
}
