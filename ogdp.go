// Package ogdp is the public API of the OGDP-study library, a full
// reproduction of "Analysis of Open Government Datasets From a Data
// Design and Integration Perspective" (EDBT 2024). It re-exports the
// stable surface of the internal packages:
//
//   - parsing CSV resources with the paper's header-inference and
//     cleaning pipeline,
//   - profiling tables (nulls, uniqueness, keys),
//   - discovering functional dependencies (the FUN algorithm) and
//     decomposing tables into BCNF,
//   - finding joinable pairs by Jaccard value overlap with expansion
//     ratios, and unionable sets by schema identity,
//   - generating calibrated synthetic portals (SG/CA/UK/US) and
//     running the paper's entire study over them.
//
// # Concurrency
//
// The study, the join search, and the CKAN acquisition client share a
// deterministic parallel execution layer (a bounded worker pool in
// internal/parallel), controlled by StudyOptions.Workers,
// JoinOptions.Workers and FetchClient.Workers: 0 uses all CPUs, 1
// runs sequentially. Every parallel unit draws from an
// index-derived rng stream and merged outputs are restored to the
// sequential order, so results are byte-identical for every worker
// count — raising Workers only changes wall-clock time. Tables are
// safe to share across these analyses: column-profile caches are
// computed under a per-table lock.
//
// See the examples/ directory for runnable walkthroughs and
// cmd/ogdpreport for the end-to-end reproduction of every table and
// figure in the paper.
package ogdp

import (
	"io"
	"math/rand"
	"os"

	"ogdp/internal/ckan"
	"ogdp/internal/classify"
	"ogdp/internal/core"
	"ogdp/internal/corpus"
	"ogdp/internal/csvio"
	"ogdp/internal/dict"
	"ogdp/internal/diskcorpus"
	"ogdp/internal/fd"
	"ogdp/internal/gen"
	"ogdp/internal/ind"
	"ogdp/internal/join"
	"ogdp/internal/keys"
	"ogdp/internal/normalize"
	"ogdp/internal/obs"
	"ogdp/internal/rank"
	"ogdp/internal/report"
	"ogdp/internal/search"
	"ogdp/internal/sqlgen"
	"ogdp/internal/table"
	"ogdp/internal/union"
	"ogdp/internal/values"
)

// Re-exported core types. The alias form keeps one canonical
// definition while giving downstream users a single import.
type (
	// Table is an in-memory relational table with cached column
	// profiles.
	Table = table.Table
	// ColumnProfile is a column's cached null/distinct/type profile.
	ColumnProfile = table.ColumnProfile
	// ColumnType is the column-level data type (incremental integer,
	// categorical, timestamp, ...).
	ColumnType = values.ColumnType
	// FD is a functional dependency with a single right-hand attribute.
	FD = fd.FD
	// BCNFResult describes one BCNF decomposition.
	BCNFResult = normalize.Result
	// JoinPair is a joinable column pair with Jaccard similarity and
	// expansion ratio.
	JoinPair = join.Pair
	// JoinAnalysis is the result of a joinability search.
	JoinAnalysis = join.Analysis
	// JoinOptions tunes the joinability search.
	JoinOptions = join.Options
	// UnionAnalysis is the result of a unionability search.
	UnionAnalysis = union.Analysis
	// UnionGroup is one set of mutually unionable tables.
	UnionGroup = union.Group
	// PortalProfile is a calibrated synthetic portal profile.
	PortalProfile = gen.PortalProfile
	// Corpus is a generated portal corpus with provenance.
	Corpus = gen.Corpus
	// CorpusSource is the storage-agnostic corpus interface the study
	// runs over; *Corpus and disk-loaded corpora both implement it.
	CorpusSource = corpus.Source
	// StudyOptions configures a full study run.
	StudyOptions = core.Options
	// StudyResult holds every experiment of the paper for all portals.
	StudyResult = core.StudyResult
	// PortalResult holds every experiment for one portal.
	PortalResult = core.PortalResult
	// Label is the accidental/useful annotation of an integration pair.
	Label = classify.Label
	// CSVOptions tunes CSV parsing.
	CSVOptions = csvio.Options
	// ApproxFD is a functional dependency holding up to a g3 error.
	ApproxFD = fd.ApproxFD
	// ScoredJoin is a join pair with its suggestion-ranking score.
	ScoredJoin = rank.ScoredJoin
	// ScoredUnion is a union candidate with its relatedness score.
	ScoredUnion = rank.ScoredUnion
	// Dictionary is an extracted column -> description mapping.
	Dictionary = dict.Dictionary
	// SearchEngine answers query-table discovery requests (top-k
	// joinable by overlap, unionable by schema) over an indexed corpus.
	SearchEngine = search.Engine
	// SearchResult is one joinability search hit.
	SearchResult = search.Result
	// ThreeNFResult is the outcome of 3NF synthesis.
	ThreeNFResult = normalize.ThreeNFResult
	// FuzzyUnionPair is a pair of tables unionable under approximate
	// schema matching.
	FuzzyUnionPair = union.FuzzyPair
	// IND is a unary inclusion dependency (foreign-key shape).
	IND = ind.IND
	// FetchClient acquires a portal's CSV resources through the CKAN
	// API with bounded concurrency, per-request deadlines, and
	// deterministic retries for transient failures.
	FetchClient = ckan.Client
	// FetchedTable is a resource that survived the acquisition funnel.
	FetchedTable = ckan.FetchedTable
	// FunnelStats counts the acquisition funnel stages (Table 1) plus
	// the crawl's retry and partial-failure accounting.
	FunnelStats = ckan.FunnelStats
	// FetchFailure is one permanently failed request in the
	// acquisition error ledger.
	FetchFailure = ckan.FetchFailure
	// CKANPortal is a servable portal: datasets holding resources.
	CKANPortal = ckan.Portal
	// CKANServer serves a portal over the CKAN Action API v3, with
	// optional per-endpoint fault injection.
	CKANServer = ckan.Server
	// Faults configures a CKANServer's injected failures per endpoint.
	Faults = ckan.Faults
	// FaultSpec describes one endpoint's injected failures (transient
	// 500s, truncated bodies, latency).
	FaultSpec = ckan.FaultSpec
	// MetricsRegistry collects deterministic counters, gauges, and
	// fixed-bucket histograms; attach one to FetchClient.Metrics or
	// StudyOptions.Metrics and snapshot it after the run.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time copy of a registry, sorted
	// into canonical series order; render it with WriteText,
	// WriteJSON, or WritePrometheus.
	MetricsSnapshot = obs.Snapshot
	// TraceSpan is one stage of a run in a trace tree (see NewTrace).
	TraceSpan = obs.Span
)

// Labels.
const (
	LabelUAcc   = classify.LabelUAcc
	LabelRAcc   = classify.LabelRAcc
	LabelUseful = classify.LabelUseful
)

// MaxFDLHS is the paper's bound on FD left-hand-side size.
const MaxFDLHS = fd.MaxLHS

// ReadCSV parses a CSV document with the paper's pipeline: header
// inference over the first 500 rows, trailing empty column removal,
// and the 100-column wide-table cutoff.
func ReadCSV(name string, r io.Reader) (*Table, error) {
	return csvio.Read(name, r)
}

// ReadCSVFile parses a CSV file from disk.
func ReadCSVFile(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return csvio.Read(path, f)
}

// ReadCSVWith parses with explicit options.
func ReadCSVWith(name string, r io.Reader, opts CSVOptions) (*Table, error) {
	return csvio.ReadWith(name, r, opts)
}

// WriteCSV serializes a table as CSV.
func WriteCSV(w io.Writer, t *Table) error { return csvio.Write(w, t) }

// DiscoverFDs returns the minimal non-trivial functional dependencies
// of t with |LHS| ≤ MaxFDLHS, using the FUN algorithm.
func DiscoverFDs(t *Table) []FD { return fd.Discover(t, fd.MaxLHS) }

// HasNontrivialFD reports whether t has any non-trivial FD.
func HasNontrivialFD(t *Table) bool { return fd.HasNontrivialFD(t, fd.MaxLHS) }

// DecomposeBCNF decomposes t into Boyce-Codd normal form using the
// paper's textbook algorithm with uniformly random FD choice.
func DecomposeBCNF(t *Table, seed int64) *BCNFResult {
	return normalize.Decompose(t, fd.MaxLHS, rand.New(rand.NewSource(seed)))
}

// KeyColumns returns the indices of single-column keys of t.
func KeyColumns(t *Table) []int { return keys.KeyColumns(t) }

// MinCandidateKeySize returns the size of t's smallest candidate key
// of at most 3 columns (0 when none exists).
func MinCandidateKeySize(t *Table) int {
	return keys.MinCandidateKeySize(t, keys.MaxCandidateKeySize)
}

// FindJoinable finds joinable table pairs: columns with ≥ 10 distinct
// values whose value sets have Jaccard similarity ≥ 0.9 (the paper's
// thresholds; override via opts). opts.Workers parallelizes the
// search without changing its result.
func FindJoinable(tables []*Table, opts JoinOptions) *JoinAnalysis {
	return join.Find(tables, opts)
}

// FindUnionable groups tables by exact schema identity (column names
// and broad types).
func FindUnionable(tables []*Table) *UnionAnalysis {
	return union.Find(tables)
}

// Portals returns the four calibrated portal profiles (SG, CA, UK,
// US).
func Portals() []PortalProfile { return gen.Profiles() }

// Portal returns one calibrated profile by code ("SG", "CA", "UK",
// "US").
func Portal(name string) (PortalProfile, bool) { return gen.ProfileByName(name) }

// GenerateCorpus builds a synthetic portal corpus. scale multiplies
// the calibrated size (1.0 = full); seed makes it deterministic.
func GenerateCorpus(p PortalProfile, scale float64, seed int64) *Corpus {
	return gen.Generate(p, scale, seed)
}

// RunStudy executes the paper's entire study over all four portals.
// opts.Workers bounds the parallel fan-out (0 = all CPUs); the result
// is byte-identical for every worker count.
func RunStudy(opts StudyOptions) *StudyResult {
	return core.Run(gen.Profiles(), opts)
}

// RunPortalStudy executes every analysis of the paper over one corpus
// source — generated or loaded from disk. Generated corpora
// additionally get the ground-truth labeling and the HTTP funnel;
// other sources run the structural analyses.
func RunPortalStudy(src CorpusSource, opts StudyOptions) PortalResult {
	return core.RunPortal(src, opts)
}

// SaveCorpus writes a generated corpus to a directory: one CSV per
// table plus dataset and provenance manifests, so LoadCorpusDir can
// reconstruct it for an identical study run.
func SaveCorpus(dir string, c *Corpus) error {
	_, err := gen.SaveCorpus(dir, c)
	return err
}

// LoadCorpusDir loads a directory of CSV files as a study-ready
// corpus source. Directories written by SaveCorpus (or ogdpgen) come
// back with full provenance; any other directory loads through the
// paper's acquisition pipeline (sniffing, header inference, cleaning).
func LoadCorpusDir(dir string) (CorpusSource, error) {
	return diskcorpus.LoadStudy(dir)
}

// WriteReport renders every table and figure of the paper from a
// study result, with the paper's reported values alongside.
func WriteReport(w io.Writer, res *StudyResult) {
	report.All(w, res)
	report.Summary(w, res)
}

// DiscoverApproximateFDs finds FDs that hold after removing at most
// maxError fraction of rows (g3 measure) — the dirty-data extension of
// the §4.3 analysis.
func DiscoverApproximateFDs(t *Table, maxLHS int, maxError float64) []ApproxFD {
	return fd.DiscoverApproximate(t, maxLHS, maxError)
}

// FDPlausibility scores how likely a discovered FD is a real semantic
// dependency rather than an instance accident (0..1), addressing the
// accidental-vs-real FD question the paper raises.
func FDPlausibility(t *Table, f FD) float64 { return fd.Plausibility(t, f) }

// RankJoins orders joinable pairs for suggestion using the non-value
// signals of §5.3 (dataset locality, key involvement, column type,
// expansion), best first.
func RankJoins(tables []*Table, pairs []JoinPair) []ScoredJoin {
	return rank.RankJoins(tables, pairs, rank.JoinWeights{})
}

// RankUnionCandidates orders the union partners of the target table by
// relatedness (the ranking problem §6 closes with), best first.
func RankUnionCandidates(a *UnionAnalysis, target int) []ScoredUnion {
	return rank.RankUnionCandidates(a, target, rank.UnionWeights{})
}

// ExtractDictionary parses a metadata document (CSV dictionary, HTML
// definition list, bullet list, or plain lines) into a data
// dictionary.
func ExtractDictionary(doc string) *Dictionary { return dict.Extract(doc) }

// DictionaryCoverage is the fraction of t's columns the dictionary
// describes.
func DictionaryCoverage(d *Dictionary, t *Table) float64 { return dict.Coverage(d, t) }

// DatasetMetadataDoc renders a generated dataset's dictionary document
// in its portal's (possibly unstructured) style; ok is false when the
// dataset publishes no dictionary.
func DatasetMetadataDoc(c *Corpus, datasetID string, seed int64) (string, bool) {
	return gen.MetadataDoc(c, datasetID, seed)
}

// NewFetchClient creates an acquisition client for the CKAN API at
// baseURL. Configure FetchClient.Workers/Retries/Timeout before
// calling FetchAll; results are byte-identical for every worker count.
func NewFetchClient(baseURL string) *FetchClient { return ckan.NewClient(baseURL) }

// NewCKANServer serves p over the CKAN Action API v3 surface the
// fetch client crawls. Use CKANServer.InjectFaults to simulate a
// flaky portal.
func NewCKANServer(p *CKANPortal) *CKANServer { return ckan.NewServer(p) }

// BuildCKANPortal serializes a corpus into a servable portal,
// planting broken resources (404s, HTML pages, garbage, wide tables)
// at the profile's calibrated rates.
func BuildCKANPortal(c *Corpus, seed int64) *CKANPortal { return gen.BuildPortal(c, seed) }

// NewSearchEngine indexes a corpus for query-table discovery with the
// paper's distinct-value filter.
func NewSearchEngine(tables []*Table) *SearchEngine {
	return search.New(tables, search.MinUniqueDefault)
}

// Synthesize3NF decomposes t into third normal form (lossless and
// dependency-preserving), the synthesis companion to DecomposeBCNF.
func Synthesize3NF(t *Table) *ThreeNFResult {
	return normalize.Synthesize3NF(t, fd.MaxLHS)
}

// DiscoverFDsTANE runs the TANE algorithm; it returns the same minimal
// non-trivial FDs as DiscoverFDs and exists for cross-validation and
// benchmarking.
func DiscoverFDsTANE(t *Table) []FD { return fd.DiscoverTANE(t, fd.MaxLHS) }

// FindUnionableFuzzy reports table pairs unionable under approximate
// schema matching (q-gram column-name similarity with compatible
// types), the relaxation used by the systems the paper cites.
func FindUnionableFuzzy(tables []*Table) []FuzzyUnionPair {
	return union.FindFuzzy(tables, union.FuzzyOptions{})
}

// DiscoverINDs finds unary inclusion dependencies (A ⊆ B) across the
// corpus — foreign-key candidates when B is a key.
func DiscoverINDs(tables []*Table) []IND {
	return ind.Find(tables, ind.Options{})
}

// NewMetricsRegistry creates an empty metrics registry. Everything
// the pipeline records into it is deterministic — wall time never
// enters unless a clock is explicitly injected — so snapshots are
// byte-identical for every worker count.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewTrace creates a clockless root span: the tree records task,
// item, and byte counts only, and renders identically across runs.
// Attach it to StudyOptions.Trace or FetchClient.Trace and render it
// with TraceSpan.WriteTree.
func NewTrace(name string) *TraceSpan { return obs.NewTrace(name) }

// ExportSQL renders the tables as CREATE TABLE statements with
// inferred column types, discovered primary keys, and (when fks is
// true) foreign keys derived from inclusion dependencies — the
// "serve the decomposed base tables" suggestion of §4.3 in schema
// form.
func ExportSQL(tables []*Table, fks bool) string {
	return sqlgen.Schema(tables, sqlgen.Options{ForeignKeys: fks})
}
